#include "core/live.h"

#include <algorithm>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <filesystem>
#include <mutex>
#include <optional>
#include <set>
#include <thread>
#include <utility>

#include "collector/checkpoint.h"
#include "core/live_checkpoint.h"
#include "obs/dashboard.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/strings.h"

namespace ranomaly::core {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PeerComponentName(bgp::Ipv4Addr peer) {
  return "peer/" + peer.ToString();
}

// Degradation-ladder runtime state (persisted via the SHED section).
struct ShedState {
  int level = 0;
  std::uint64_t calm_ticks = 0;     // consecutive below-watermark ticks
  std::uint64_t arrival_index = 0;  // deterministic L3 sampling phase
  bool tracer_suspended = false;
  bool tracer_was_enabled = false;
  std::vector<ShedWindow> windows;
};

const char* ShedLevelAction(int level) {
  switch (level) {
    case 1: return "tracing suspended";
    case 2: return "analysis cadence halved";
    case 3: return "sampling arrivals";
  }
  return "nominal";
}

// The latency histogram bucket an incident falls in; must mirror the
// SLOH cross-check in live_checkpoint.cc.
std::size_t LatencyBucket(const std::vector<double>& bounds, double latency) {
  for (std::size_t b = 0; b < bounds.size(); ++b) {
    if (latency <= bounds[b]) return b;
  }
  return bounds.size();  // overflow
}

}  // namespace

// ---------------------------------------------------------------------------
// IncidentLog

std::uint64_t IncidentLog::Append(Incident incident) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = entries_.size() + 1;
  entries_.push_back(Entry{seq, std::move(incident)});
  return seq;
}

bool IncidentLog::Restore(std::vector<Entry> entries) {
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].seq != i + 1) {
      std::lock_guard<std::mutex> lock(mu_);
      entries_.clear();
      return false;
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  entries_ = std::move(entries);
  return true;
}

std::vector<IncidentLog::Entry> IncidentLog::Since(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  if (since < entries_.size()) {
    out.assign(entries_.begin() + static_cast<std::ptrdiff_t>(since),
               entries_.end());
  }
  return out;
}

std::size_t IncidentLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string IncidentLog::ToJson(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"incidents\":[";
  bool first = true;
  for (std::size_t i = since; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const Incident& inc = e.incident;
    if (!first) out += ',';
    first = false;
    out += util::StrPrintf(
        "{\"seq\":%llu,\"kind\":\"%s\",\"begin_sec\":%.3f,\"end_sec\":%.3f,"
        "\"event_count\":%zu,\"prefix_count\":%zu,\"stem\":\"%s\","
        "\"summary\":\"%s\",\"detected_at_sec\":%.3f,"
        "\"detection_latency_sec\":%.3f,\"feed_degraded\":%s,"
        "\"load_shed\":%s}",
        static_cast<unsigned long long>(e.seq), ToString(inc.kind),
        util::ToSeconds(inc.begin), util::ToSeconds(inc.end), inc.event_count,
        inc.prefix_count, JsonEscape(inc.stem_label).c_str(),
        JsonEscape(inc.summary).c_str(), util::ToSeconds(inc.detected_at),
        inc.detection_latency_sec, inc.feed_degraded ? "true" : "false",
        inc.load_shed ? "true" : "false");
  }
  out += util::StrPrintf("],\"next_since\":%llu}",
                         static_cast<unsigned long long>(entries_.size()));
  return out;
}

// ---------------------------------------------------------------------------
// PeerBoard

PeerBoard::State& PeerBoard::Of(bgp::Ipv4Addr peer) {
  for (auto& [addr, state] : peers_) {
    if (addr == peer.value()) return state;
  }
  peers_.emplace_back(peer.value(), State{});
  State& state = peers_.back().second;
  state.row.peer = peer;
  state.row.first_seen = -1;
  return state;
}

void PeerBoard::Observe(const bgp::Event& event) {
  State& s = Of(event.peer);
  Row& row = s.row;
  if (row.first_seen < 0) row.first_seen = event.time;
  row.last_seen = event.time;
  switch (event.type) {
    case bgp::EventType::kAnnounce:
      ++row.announces;
      break;
    case bgp::EventType::kWithdraw:
      ++row.withdraws;
      break;
    case bgp::EventType::kFeedGap:
      if (!row.degraded) {
        row.degraded = true;
        ++row.gaps;
        row.last_gap = event.time;
        s.gap_open = event.time;
      }
      break;
    case bgp::EventType::kResync:
      if (row.degraded) {
        row.degraded = false;
        ++row.reconnects;
        s.gap_sec += util::ToSeconds(event.time - s.gap_open);
        s.gap_open = -1;
      }
      break;
  }
}

void PeerBoard::Finish(util::SimTime end) {
  for (auto& [addr, s] : peers_) {
    if (s.gap_open >= 0 && end > s.gap_open) {
      // Open gap: accrue degraded time up to the close of books, but keep
      // the gap open (the peer is still degraded).
      s.gap_sec += util::ToSeconds(end - s.gap_open);
      s.gap_open = end;
    }
    if (end > s.row.last_seen) s.row.last_seen = end;
  }
}

std::vector<PeerBoard::Persisted> PeerBoard::Export() const {
  std::vector<Persisted> out;
  out.reserve(peers_.size());
  for (const auto& [addr, s] : peers_) {
    out.push_back(Persisted{s.row, s.gap_open, s.gap_sec});
  }
  return out;
}

void PeerBoard::Restore(std::vector<Persisted> states) {
  peers_.clear();
  peers_.reserve(states.size());
  for (Persisted& p : states) {
    State s;
    s.row = std::move(p.row);
    s.gap_open = p.gap_open;
    s.gap_sec = p.gap_sec;
    peers_.emplace_back(s.row.peer.value(), std::move(s));
  }
}

std::vector<PeerBoard::Row> PeerBoard::Rows() const {
  std::vector<Row> out;
  out.reserve(peers_.size());
  for (const auto& [addr, s] : peers_) {
    Row row = s.row;
    if (row.first_seen < 0) row.first_seen = 0;
    const double span = util::ToSeconds(row.last_seen - row.first_seen);
    row.uptime_sec = std::max(0.0, span - s.gap_sec);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    return a.peer.value() < b.peer.value();
  });
  return out;
}

std::string FormatPeerTable(const std::vector<PeerBoard::Row>& rows) {
  std::string out = util::StrPrintf(
      "%-16s %-9s %12s %10s %10s %6s %6s %11s %10s\n", "PEER", "STATE",
      "UPTIME", "ANNOUNCES", "WITHDRAWS", "GAPS", "RECON", "QUARANTINED",
      "LAST-GAP");
  for (const PeerBoard::Row& row : rows) {
    const std::string uptime =
        util::FormatDuration(util::FromSeconds(row.uptime_sec));
    const std::string last_gap =
        row.last_gap < 0 ? "-" : util::FormatDuration(row.last_gap);
    out += util::StrPrintf(
        "%-16s %-9s %12s %10llu %10llu %6llu %6llu %11llu %10s\n",
        row.peer.ToString().c_str(), row.degraded ? "DEGRADED" : "OK",
        uptime.c_str(), static_cast<unsigned long long>(row.announces),
        static_cast<unsigned long long>(row.withdraws),
        static_cast<unsigned long long>(row.gaps),
        static_cast<unsigned long long>(row.reconnects),
        static_cast<unsigned long long>(row.quarantined), last_gap.c_str());
  }
  return out;
}

// ---------------------------------------------------------------------------
// LiveRunner

std::vector<double> DetectionLatencyBounds() {
  return {1, 2, 5, 10, 15, 30, 60, 120, 300, 900};
}

LiveRunner::LiveRunner(LiveOptions options, obs::HealthRegistry* health,
                       IncidentLog* incidents, obs::TimeSeriesStore* series,
                       obs::ProvenanceLedger* provenance)
    : options_(std::move(options)),
      pipeline_(options_.pipeline),
      health_(health),
      incidents_(incidents),
      series_(series),
      provenance_(provenance) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.SetHelp("incident_detection_latency_seconds",
              "Simulated seconds from an incident's triggering burst to the "
              "analysis tick that first surfaced it.");
  reg.SetHelp("incident_detection_slo_ratio",
              "Fraction of detected incidents whose detection latency met "
              "the SLO target.");
  reg.SetHelp("serve_ticks_total", "Live replay analysis ticks executed.");
  reg.SetHelp("serve_events_ingested_total",
              "Events ingested by the live replay.");
  reg.SetHelp("serve_incidents_total",
              "Distinct incidents surfaced by the live replay.");
  reg.SetHelp("serve_replay_position_seconds",
              "Current simulated-time position of the live replay.");
  reg.SetHelp("health_component_state",
              "Health state per component: 0=ok 1=degraded 2=down.");
  reg.SetHelp("serve_queue_depth",
              "Routing events waiting in the bounded ingest queue at the "
              "end of the last tick.");
  reg.SetHelp("serve_shed_level",
              "Current degradation-ladder stage: 0=nominal 1=tracing "
              "suspended 2=cadence halved 3=sampling arrivals.");
  reg.SetHelp("serve_events_shed_total",
              "Routing events dropped by the overload ladder (sampled out "
              "at L3 or rejected at queue capacity).");
  reg.SetHelp("serve_shed_transitions_total",
              "Degradation-ladder stage changes, labeled by the stage "
              "entered.");
  reg.SetHelp("serve_restores_total",
              "Successful live-state restores from an RNC1 checkpoint.");
  reg.SetHelp("serve_restore_failures_total",
              "Checkpoint restores rejected by validation (the replay "
              "started fresh instead).");
  reg.SetHelp("log_lines_suppressed_total",
              "Log lines swallowed by rate limiting across all call sites.");
}

LiveStats LiveRunner::Run(
    const collector::EventStream& stream,
    const std::atomic<bool>* keep_going,
    const std::function<void(const LiveStats&)>& on_tick) {
  LiveStats stats;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const std::vector<double> latency_bounds = DetectionLatencyBounds();
  const obs::MetricId latency_id =
      reg.Histogram("incident_detection_latency_seconds", latency_bounds);
  const obs::MetricId slo_id = reg.Gauge("incident_detection_slo_ratio");
  const obs::MetricId ticks_id = reg.Counter("serve_ticks_total");
  const obs::MetricId ingested_id = reg.Counter("serve_events_ingested_total");
  const obs::MetricId incidents_id = reg.Counter("serve_incidents_total");
  const obs::MetricId position_id = reg.Gauge("serve_replay_position_seconds");
  const obs::MetricId depth_id = reg.Gauge("serve_queue_depth");
  const obs::MetricId level_id = reg.Gauge("serve_shed_level");
  const obs::MetricId shed_id = reg.Counter("serve_events_shed_total");
  const obs::MetricId restores_id = reg.Counter("serve_restores_total");
  const obs::MetricId restore_failures_id =
      reg.Counter("serve_restore_failures_total");
  const obs::MetricId suppressed_id = reg.Gauge("log_lines_suppressed_total");

  obs::HealthRegistry::ComponentId replay_id = 0;
  obs::HealthRegistry::ComponentId ingest_id = 0;
  if (health_ != nullptr) {
    replay_id = health_->Register("replay");
    ingest_id = health_->Register("ingest");
    if (options_.heartbeat_deadline_sec > 0) {
      health_->SetHeartbeatDeadline(replay_id, options_.heartbeat_deadline_sec);
    }
  }
  const auto peer_health = [this](bgp::Ipv4Addr peer, obs::HealthState state,
                                  std::string reason) {
    if (health_ == nullptr) return;
    const auto id = health_->Register(PeerComponentName(peer));
    health_->SetState(id, state, std::move(reason));
  };
  // Mirror health states into labeled gauges so they scrape.
  const auto sync_health_gauges = [this, &reg]() {
    if (health_ == nullptr) return;
    for (const auto& c : health_->Snapshot()) {
      const obs::MetricId id = reg.Gauge(
          "health_component_state" +
          obs::PromLabels({{"component", c.name}}));
      reg.Set(id, static_cast<double>(c.state));
    }
  };

  if (stream.empty()) {
    if (health_ != nullptr) {
      health_->SetState(replay_id, obs::HealthState::kOk, "replay complete");
    }
    sync_health_gauges();
    return stats;
  }

  const auto& events = stream.events();
  const util::SimTime t0 = events.front().time;
  const ShedOptions& so = options_.shed;
  const bool backpressure = so.queue_capacity > 0;
  const bool checkpointing = !options_.checkpoint_path.empty() &&
                             options_.checkpoint_every_ticks > 0;

  std::size_t next = 0;
  std::vector<bgp::Event> window;
  std::vector<bgp::Event> queue;  // routing events awaiting analysis, FIFO
  // Stream index of each in-flight event, maintained in lockstep with
  // window/queue.  Checkpoints persist these (as the FLOW section's
  // 2-bit admission classes) instead of the event bytes themselves: the
  // stream file is the source of truth, and restore re-reads it.
  std::vector<std::uint64_t> window_idx;
  std::vector<std::uint64_t> queue_idx;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_stems;
  std::vector<LiveGap> gaps;
  PeerBoard board;
  ShedState shed;
  // Mirror of the incident log plus histogram counts, kept so checkpoints
  // can be cut without reaching into the (shared) sinks.
  std::vector<IncidentLog::Entry> logged;
  std::vector<std::uint64_t> latency_counts(latency_bounds.size() + 1, 0);
  bool complete = false;

  const auto peer_health_reason = [](const LiveGap& gap) {
    return util::StrPrintf("feed gap open since %.0fs",
                           util::ToSeconds(gap.begin));
  };

  // ---- Restore.  Any validation failure is loud (the failing section is
  // named) but non-fatal: deterministic replay from the stream converges
  // to the same incident log, so starting fresh self-heals.
  if (!options_.checkpoint_path.empty() &&
      std::filesystem::exists(options_.checkpoint_path)) {
    const auto reject = [&](const std::string& why) {
      RANOMALY_LOG(util::LogLevel::kError,
                   util::StrPrintf("checkpoint restore from %s rejected: %s; "
                                   "starting fresh",
                                   options_.checkpoint_path.c_str(),
                                   why.c_str()));
      reg.Add(restore_failures_id, 1);
    };
    collector::LoadDiagnostics diag;
    LiveCheckpointState st;
    std::string err;
    const std::optional<collector::Checkpoint> ck =
        collector::ReadCheckpointFile(options_.checkpoint_path, &diag);
    if (!ck.has_value()) {
      reject(diag.ToString());
    } else if (!DecodeLiveState(*ck, &st, &err)) {
      reject(err);
    } else if (st.t0 != t0) {
      reject("section LIVE: t0 does not match the stream");
    } else if (st.next_event > events.size()) {
      reject("section LIVE: cursor beyond the end of the stream");
    } else if (incidents_ != nullptr && !incidents_->Restore(st.incidents)) {
      reject("section INCD: incident log rejected the entries");
    } else if (series_ != nullptr &&
               !series_->Restore(std::move(st.series_store), &err)) {
      // Tier shape is configuration: a checkpoint cut under different
      // retention tiers must not seed this store's rings.  The incident
      // log was already replaced above; empty it again so the fresh
      // replay starts from a consistent nothing.
      if (incidents_ != nullptr) incidents_->Restore({});
      reject("section SERS: " + err);
    } else if (provenance_ != nullptr &&
               !provenance_->Restore(std::move(st.provenance), &err)) {
      // Same unwind discipline as SERS: the incident log and series
      // store were already replaced above; empty them again so the
      // fresh replay starts from a consistent nothing.
      if (incidents_ != nullptr) incidents_->Restore({});
      if (series_ != nullptr) series_->Restore({}, nullptr);
      reject("section PROV: " + err);
    } else {
      next = static_cast<std::size_t>(st.next_event);
      stats = st.stats;
      // Rebuild the in-flight containers from the stream: the FLOW
      // section records only each event's admission class.  The ingest
      // stamp is derivable — consumption always happens at the first
      // tick boundary strictly after the event's time, on the fixed
      // grid anchored at t0.
      for (std::size_t k = 0; k < st.flow.size(); ++k) {
        if (st.flow[k] == 0) continue;
        const std::size_t i = static_cast<std::size_t>(st.flow_start) + k;
        bgp::Event event = events[i];
        event.ingest_tick =
            t0 + ((event.time - t0) / options_.tick + 1) * options_.tick;
        if (st.flow[k] == 1) {
          window.push_back(std::move(event));
          window_idx.push_back(st.flow_start + k);
        } else {
          queue.push_back(std::move(event));
          queue_idx.push_back(st.flow_start + k);
        }
      }
      seen_stems.insert(st.seen_stems.begin(), st.seen_stems.end());
      gaps = std::move(st.gaps);
      board.Restore(std::move(st.peers));
      shed.level = st.shed_level;
      shed.calm_ticks = st.calm_ticks;
      shed.arrival_index = st.arrival_index;
      shed.tracer_suspended = st.tracer_suspended;
      shed.tracer_was_enabled = st.tracer_was_enabled;
      shed.windows = std::move(st.shed_windows);
      logged = std::move(st.incidents);
      latency_counts = std::move(st.latency_counts);
      // Rebuild the external surfaces the snapshot implies: metrics
      // counters resume, the latency histogram is re-observed exactly
      // (simulated values), and degraded peers re-report.
      reg.Add(ingested_id, static_cast<double>(stats.events_ingested));
      reg.Add(ticks_id, static_cast<double>(stats.ticks));
      reg.Add(incidents_id, static_cast<double>(stats.incidents));
      reg.Add(shed_id, static_cast<double>(stats.events_shed));
      for (const IncidentLog::Entry& e : logged) {
        reg.Observe(latency_id, e.incident.detection_latency_sec);
      }
      if (stats.incidents > 0) {
        reg.Set(slo_id, static_cast<double>(stats.incidents_within_slo) /
                            static_cast<double>(stats.incidents));
      }
      reg.Set(position_id, util::ToSeconds(stats.clock));
      if (shed.tracer_suspended) obs::Tracer::Global().SetEnabled(false);
      if (health_ != nullptr) {
        for (const PeerBoard::Row& row : board.Rows()) {
          health_->Register(PeerComponentName(row.peer));
        }
        for (const LiveGap& gap : gaps) {
          if (!gap.closed) {
            peer_health(gap.peer, obs::HealthState::kDegraded,
                        peer_health_reason(gap));
          }
        }
        if (shed.level > 0) {
          health_->SetState(
              ingest_id, obs::HealthState::kDegraded,
              util::StrPrintf("load shed L%d: %s", shed.level,
                              ShedLevelAction(shed.level)));
        }
      }
      reg.Add(restores_id, 1);
      RANOMALY_LOG(util::LogLevel::kInfo,
                   util::StrPrintf(
                       "restored live state from %s: tick %llu, clock %.0fs, "
                       "%llu incidents, %zu queued",
                       options_.checkpoint_path.c_str(),
                       static_cast<unsigned long long>(stats.ticks),
                       util::ToSeconds(stats.clock),
                       static_cast<unsigned long long>(stats.incidents),
                       queue.size()));
    }
  }

  // ---- Checkpoint cutting.  Snapshots are taken only at tick
  // boundaries, so a crash between them re-executes the partial tick
  // identically after restore.
  std::uint64_t next_checkpoint_tick =
      stats.ticks + options_.checkpoint_every_ticks;
  std::uint64_t retry_backoff = 0;
  const auto make_checkpoint = [&]() -> collector::Checkpoint {
    LiveCheckpointState st;
    st.t0 = t0;
    st.next_event = next;
    st.stats = stats;
    st.shed_level = shed.level;
    st.calm_ticks = shed.calm_ticks;
    st.arrival_index = shed.arrival_index;
    st.tracer_suspended = shed.tracer_suspended;
    st.tracer_was_enabled = shed.tracer_was_enabled;
    st.shed_windows = shed.windows;
    st.seen_stems.assign(seen_stems.begin(), seen_stems.end());
    st.gaps = gaps;
    st.peers = board.Export();
    st.latency_counts = latency_counts;
    if (series_ != nullptr) st.series_store = series_->Export();
    if (provenance_ != nullptr) st.provenance = provenance_->Export();
    // In-flight events persist as 2-bit admission classes over the
    // stream range [flow_start, next): window entries always precede
    // queue entries, so the front of window_idx (or queue_idx when the
    // window is empty) is the oldest in-flight stream index.
    st.flow_start = !window_idx.empty()
                        ? window_idx.front()
                        : (!queue_idx.empty() ? queue_idx.front() : next);
    st.flow.assign(next - static_cast<std::size_t>(st.flow_start), 0);
    for (const std::uint64_t i : window_idx) st.flow[i - st.flow_start] = 1;
    for (const std::uint64_t i : queue_idx) st.flow[i - st.flow_start] = 2;
    collector::Checkpoint ck;
    // The incident log is encoded by reference (borrowing overload):
    // copying it into `st` costs three string allocations per entry, and
    // the snapshot is cut on the replay thread.
    EncodeLiveState(st, logged, ck);
    return ck;
  };
  const auto write_checkpoint = [&]() -> bool {
    const bool ok =
        collector::WriteCheckpointFile(make_checkpoint(), options_.checkpoint_path);
    if (ok) {
      ++stats.checkpoint_writes;
    } else {
      ++stats.checkpoint_failures;
    }
    return ok;
  };

  // Periodic snapshots are cut on the replay thread (the state copy and
  // encode are cheap and must be consistent) but written — fsync, rename,
  // fsync — by a single background writer, so disk latency never stalls a
  // tick.  The result is reaped at the *next* checkpoint boundary, which
  // keeps every stats/backoff mutation tick-deterministic: a resumed run
  // accounts writes on exactly the same ticks as an uninterrupted one.
  std::mutex ck_mu;
  std::condition_variable ck_cv;
  std::optional<collector::Checkpoint> ck_job;
  std::optional<bool> ck_result;
  bool ck_busy = false;
  bool ck_stop = false;
  std::thread ck_writer;
  if (checkpointing) {
    ck_writer = std::thread([&] {
      std::unique_lock<std::mutex> lock(ck_mu);
      for (;;) {
        ck_cv.wait(lock, [&] { return ck_job.has_value() || ck_stop; });
        if (!ck_job.has_value()) break;
        const collector::Checkpoint ck = std::move(*ck_job);
        ck_job.reset();
        lock.unlock();
        const bool ok =
            collector::WriteCheckpointFile(ck, options_.checkpoint_path);
        lock.lock();
        ck_result = ok;
        ck_busy = false;
        ck_cv.notify_all();
      }
    });
  }
  const auto enqueue_checkpoint = [&] {
    collector::Checkpoint ck = make_checkpoint();
    std::lock_guard<std::mutex> lock(ck_mu);
    ck_job = std::move(ck);
    ck_busy = true;
    ck_cv.notify_all();
  };
  // Blocks until the in-flight write (if any) lands; nullopt when no
  // write has been issued since the last reap.
  const auto reap_checkpoint = [&]() -> std::optional<bool> {
    std::unique_lock<std::mutex> lock(ck_mu);
    ck_cv.wait(lock, [&] { return !ck_busy; });
    const std::optional<bool> result = ck_result;
    ck_result.reset();
    return result;
  };

  // Ladder transitions: escalation is immediate, de-escalation steps one
  // stage per recovery window (the caller loop applies the hysteresis).
  const auto set_shed_level = [&](int to, util::SimTime now) {
    const int from = shed.level;
    if (to == from) return;
    if (to >= 1 && !shed.tracer_suspended) {
      shed.tracer_was_enabled = obs::Tracer::Global().enabled();
      obs::Tracer::Global().SetEnabled(false);
      shed.tracer_suspended = true;
    }
    if (to == 0 && shed.tracer_suspended) {
      obs::Tracer::Global().SetEnabled(shed.tracer_was_enabled);
      shed.tracer_suspended = false;
    }
    if (to >= 3 && from < 3) {
      shed.windows.push_back(ShedWindow{now, now, false});
    } else if (to < 3 && from >= 3) {
      for (auto it = shed.windows.rbegin(); it != shed.windows.rend(); ++it) {
        if (!it->closed) {
          it->closed = true;
          it->end = now;
          break;
        }
      }
    }
    shed.level = to;
    ++stats.shed_transitions;
    reg.Add(reg.Counter("serve_shed_transitions_total" +
                        obs::PromLabels(
                            {{"to", util::StrPrintf("L%d", to)}})),
            1);
    if (health_ != nullptr) {
      if (to == 0) {
        health_->SetState(ingest_id, obs::HealthState::kOk, "");
      } else {
        health_->SetState(ingest_id, obs::HealthState::kDegraded,
                          util::StrPrintf("load shed L%d: %s", to,
                                          ShedLevelAction(to)));
      }
    }
    RANOMALY_LOG_EVERY_N(
        util::LogLevel::kWarn, 8,
        util::StrPrintf("overload ladder %s L%d -> L%d (%s; queue %zu/%zu)",
                        to > from ? "escalated" : "recovered", from, to,
                        ShedLevelAction(to), queue.size(),
                        so.queue_capacity));
  };

  util::SimTime tick_end =
      stats.restored ? stats.clock + options_.tick : t0 + options_.tick;
  while (true) {
    if (keep_going != nullptr &&
        !keep_going->load(std::memory_order_relaxed)) {
      break;
    }
    // One span per tick, annotated with the tick index: the incident
    // timeline's trace exemplar.  /api/incidents/timeline derives the
    // same index from detected_at, so an operator can jump from an
    // incident straight to the live.tick slice that surfaced it.
    obs::TraceSpan tick_span("live.tick");
    tick_span.Annotate("tick", stats.ticks + 1);
    // Ingest this tick's batch; the batch end is the ingest stamp — the
    // earliest moment the pipeline could have analyzed these events.
    // The level chosen at the *previous* boundary governs L3 sampling,
    // so shedding is a pure function of checkpointed state.
    const int ingest_level = shed.level;
    while (next < events.size() && events[next].time < tick_end) {
      bgp::Event event = events[next];
      ++next;
      event.ingest_tick = tick_end;
      board.Observe(event);
      ++stats.events_ingested;
      reg.Add(ingested_id, 1);
      if (event.type == bgp::EventType::kFeedGap) {
        bool already_open = false;
        for (const LiveGap& g : gaps) {
          already_open |= !g.closed && g.peer == event.peer;
        }
        if (!already_open) {
          gaps.push_back(LiveGap{event.peer, event.time, event.time, false});
        }
        peer_health(event.peer, obs::HealthState::kDegraded,
                    util::StrPrintf("feed gap open since %.0fs",
                                    util::ToSeconds(event.time)));
        continue;  // markers are never queued (or shed): bookkeeping only
      }
      if (event.type == bgp::EventType::kResync) {
        for (auto it = gaps.rbegin(); it != gaps.rend(); ++it) {
          if (!it->closed && it->peer == event.peer) {
            it->closed = true;
            it->end = event.time;
            break;
          }
        }
        peer_health(event.peer, obs::HealthState::kOk, "");
        continue;
      }
      if (health_ != nullptr) {
        health_->Register(PeerComponentName(event.peer));
      }
      // Routing event: through the (possibly shedding) bounded queue.
      ++shed.arrival_index;
      if (backpressure && ingest_level >= 3 &&
          (shed.arrival_index - 1) % so.sample_stride != 0) {
        ++stats.events_shed;  // sampled out deterministically
        reg.Add(shed_id, 1);
        continue;
      }
      if (backpressure && queue.size() >= so.queue_capacity) {
        ++stats.events_shed;  // the bound is hard: drop, never grow
        reg.Add(shed_id, 1);
        continue;
      }
      queue.push_back(std::move(event));
      queue_idx.push_back(static_cast<std::uint64_t>(next - 1));
    }

    // Degradation ladder: compare end-of-ingest depth to the watermarks.
    if (backpressure) {
      const double fill = static_cast<double>(queue.size()) /
                          static_cast<double>(so.queue_capacity);
      int target = 0;
      if (fill >= so.l3_watermark) {
        target = 3;
      } else if (fill >= so.l2_watermark) {
        target = 2;
      } else if (fill >= so.l1_watermark) {
        target = 1;
      }
      if (target > shed.level) {
        set_shed_level(target, tick_end);
        shed.calm_ticks = 0;
      } else if (target < shed.level) {
        if (++shed.calm_ticks >= so.recovery_ticks) {
          set_shed_level(shed.level - 1, tick_end);
          shed.calm_ticks = 0;
        }
      } else {
        shed.calm_ticks = 0;
      }
    }

    // Slide the window, then drain the queue into it — in that order, so
    // a backlogged event older than the window still gets analyzed once.
    const util::SimTime window_begin = tick_end - options_.window;
    const auto keep_from = std::find_if(
        window.begin(), window.end(),
        [window_begin](const bgp::Event& e) { return e.time >= window_begin; });
    const auto evicted = keep_from - window.begin();
    window.erase(window.begin(), keep_from);
    window_idx.erase(window_idx.begin(), window_idx.begin() + evicted);
    std::size_t drain = queue.size();
    if (backpressure && so.service_rate > 0) {
      drain = std::min(drain, so.service_rate);
    }
    window.insert(window.end(),
                  std::make_move_iterator(queue.begin()),
                  std::make_move_iterator(queue.begin() +
                                          static_cast<std::ptrdiff_t>(drain)));
    queue.erase(queue.begin(),
                queue.begin() + static_cast<std::ptrdiff_t>(drain));
    window_idx.insert(window_idx.end(), queue_idx.begin(),
                      queue_idx.begin() + static_cast<std::ptrdiff_t>(drain));
    queue_idx.erase(queue_idx.begin(),
                    queue_idx.begin() + static_cast<std::ptrdiff_t>(drain));

    const bool final_tick = next >= events.size() && queue.empty();
    // L2+: halve the analysis cadence (every other tick covers a doubled
    // batch).  The final tick always analyzes so nothing is left behind.
    const bool analyze_now =
        shed.level < 2 || final_tick || stats.ticks % 2 == 0;
    if (analyze_now) {
      for (Incident& inc : pipeline_.AnalyzeWindow(window)) {
        if (!seen_stems.insert(inc.stem_key).second) continue;  // known
        inc.detected_at = tick_end;
        inc.detection_latency_sec = util::ToSeconds(tick_end - inc.begin);
        for (const LiveGap& gap : gaps) {
          const util::SimTime gap_end = gap.closed ? gap.end : tick_end;
          if (inc.begin <= gap_end && gap.begin <= inc.end) {
            inc.feed_degraded = true;
            inc.summary += " [feed-degraded]";
            break;
          }
        }
        for (const ShedWindow& w : shed.windows) {
          const util::SimTime w_end = w.closed ? w.end : tick_end;
          if (inc.begin <= w_end && w.begin <= inc.end) {
            inc.load_shed = true;
            inc.summary += " [load-shed]";
            break;
          }
        }
        reg.Observe(latency_id, inc.detection_latency_sec);
        ++latency_counts[LatencyBucket(latency_bounds,
                                       inc.detection_latency_sec)];
        reg.Add(incidents_id, 1);
        ++stats.incidents;
        if (inc.detection_latency_sec <= options_.slo_target_sec) {
          ++stats.incidents_within_slo;
        }
#ifndef RANOMALY_NO_PROVENANCE
        if (provenance_ != nullptr) {
          // Build the evidence record now, after the stem dedup:
          // AnalyzeWindow re-derives every component each tick, so
          // populating inside the pipeline would pay the string-heavy
          // sampling for mostly already-seen incidents.  Then finish
          // the window-relative record: key it to the log seq, rewrite
          // sampled event ids to stream indices (live windows never
          // contain markers, so component indices map 1:1 through
          // window_idx), stamp per-event admission from the shed
          // windows, and add the sim-time latency decomposition plus
          // the live.tick trace-exemplar linkage.  Everything here is
          // a pure function of the replayed stream, so the ledger
          // inherits the thread- and restart-determinism contract.
          Pipeline::PopulateProvenance(window, provenance_->caps(), inc);
          obs::IncidentProvenance prov = std::move(inc.provenance);
          prov.seq = logged.size() + 1;
          prov.trace_tick =
              static_cast<std::uint64_t>((tick_end - t0) / options_.tick);
          prov.path.insert(prov.path.begin(),
                           "live:tick " + std::to_string(prov.trace_tick));
          for (obs::ProvenanceEvent& pe : prov.events) {
            const std::size_t widx = static_cast<std::size_t>(pe.stream_index);
            pe.stream_index = window_idx[widx];
            const util::SimTime t = window[widx].time;
            for (const ShedWindow& w : shed.windows) {
              const util::SimTime w_end = w.closed ? w.end : tick_end;
              if (w.begin <= t && t <= w_end) {
                pe.admission = 1;
                break;
              }
            }
          }
          prov.stages = {{"burst-to-ingest",
                          util::ToSeconds(inc.ingest_tick - inc.begin)},
                         {"ingest-to-detect",
                          util::ToSeconds(tick_end - inc.ingest_tick)},
                         {"total", inc.detection_latency_sec}};
          provenance_->Attach(std::move(prov));
        }
        inc.provenance = {};
#endif
        logged.push_back(IncidentLog::Entry{logged.size() + 1, inc});
        if (incidents_ != nullptr) incidents_->Append(std::move(inc));
      }
      if (stats.incidents > 0) {
        reg.Set(slo_id, static_cast<double>(stats.incidents_within_slo) /
                            static_cast<double>(stats.incidents));
      }
    }

    ++stats.ticks;
    stats.clock = tick_end;
    stats.shed_level = shed.level;
    stats.queue_depth = queue.size();
    reg.Add(ticks_id, 1);
    reg.Set(position_id, util::ToSeconds(tick_end));
    reg.Set(depth_id, static_cast<double>(queue.size()));
    reg.Set(level_id, static_cast<double>(shed.level));
    reg.Set(suppressed_id, static_cast<double>(util::SuppressedLogLines()));
    if (health_ != nullptr) health_->Heartbeat(replay_id);
    sync_health_gauges();
    // Sample the registry into the dashboard history at the boundary —
    // after every metric for this tick has landed and before any
    // checkpoint is cut, so each snapshot carries its own tick's point.
    if (series_ != nullptr) series_->Sample(reg, tick_end);

    if (checkpointing && stats.ticks >= next_checkpoint_tick) {
      const std::optional<bool> previous = reap_checkpoint();
      if (previous.has_value()) {
        if (*previous) {
          ++stats.checkpoint_writes;
          retry_backoff = 0;
        } else {
          ++stats.checkpoint_failures;
        }
      }
      if (!previous.has_value() || *previous) {
        enqueue_checkpoint();
        next_checkpoint_tick = stats.ticks + options_.checkpoint_every_ticks;
      } else {
        // Keep analyzing; retry with exponential backoff so a full disk
        // does not turn the daemon into a log firehose.
        retry_backoff =
            retry_backoff == 0
                ? 1
                : std::min(retry_backoff * 2,
                           options_.checkpoint_retry_max_backoff_ticks);
        next_checkpoint_tick = stats.ticks + retry_backoff;
        RANOMALY_LOG_EVERY_N(
            util::LogLevel::kWarn, 4,
            util::StrPrintf("checkpoint write to %s failed at tick %llu; "
                            "retrying in %llu ticks",
                            options_.checkpoint_path.c_str(),
                            static_cast<unsigned long long>(stats.ticks),
                            static_cast<unsigned long long>(retry_backoff)));
      }
    }

    if (on_tick) on_tick(stats);
    if (final_tick) {
      complete = true;
      break;
    }
    tick_end += options_.tick;
  }

  if (health_ != nullptr && complete) {
    // The replay is done: it no longer makes progress, so stall detection
    // must stop accusing it.
    health_->SetHeartbeatDeadline(replay_id, 0.0);
    health_->SetState(replay_id, obs::HealthState::kOk, "replay complete");
    sync_health_gauges();
  }
  // Final checkpoint: the graceful-drain contract (and completion) leave
  // the last tick boundary durable.  Settle the in-flight background
  // write first, then write synchronously — a handful of attempts rides
  // out a transient fault; past that the stream replay is the fallback.
  if (checkpointing) {
    if (const std::optional<bool> previous = reap_checkpoint();
        previous.has_value()) {
      if (*previous) {
        ++stats.checkpoint_writes;
      } else {
        ++stats.checkpoint_failures;
      }
    }
    if (stats.ticks > 0) {
      bool durable = false;
      for (int attempt = 0; attempt < 3 && !durable; ++attempt) {
        durable = write_checkpoint();
      }
      if (!durable) {
        RANOMALY_LOG(util::LogLevel::kError,
                     util::StrPrintf("final checkpoint write to %s failed; a "
                                     "restart will replay from the last "
                                     "durable snapshot",
                                     options_.checkpoint_path.c_str()));
      }
    }
    {
      std::lock_guard<std::mutex> lock(ck_mu);
      ck_stop = true;
      ck_cv.notify_all();
    }
    ck_writer.join();
  }
  if (shed.tracer_suspended) {
    // Leave the tracer as the caller configured it, not as overload left it.
    obs::Tracer::Global().SetEnabled(shed.tracer_was_enabled);
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Ops handler

obs::HttpServer::Handler MakeOpsHandler(obs::MetricsRegistry* metrics,
                                        obs::HealthRegistry* health,
                                        IncidentLog* incidents, OpsInfo info,
                                        obs::TimeSeriesStore* series,
                                        bool dashboard,
                                        obs::ProvenanceLedger* provenance) {
  metrics->SetHelp("http_requests_total",
                   "HTTP requests whose handler ran (any status).");
  metrics->SetHelp("http_requests_rejected_total",
                   "HTTP requests rejected at the protocol level.");
  return [metrics, health, incidents, info = std::move(info), series,
          dashboard,
          provenance](const obs::HttpRequest& request) -> obs::HttpResponse {
    obs::HttpResponse response;
    if (request.path == "/metrics") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = metrics->ToPrometheus();
    } else if (request.path == "/varz") {
      std::string body = "{\"build\":{\"project\":\"ranomaly\",\"tracing\":";
#ifdef RANOMALY_NO_TRACING
      body += "false";
#else
      body += "true";
#endif
      body += ",\"provenance\":";
#ifdef RANOMALY_NO_PROVENANCE
      body += "false";
#else
      body += "true";
#endif
      body += util::StrPrintf(
          "},\"config\":{\"stream\":\"%s\",\"threads\":%zu,"
          "\"tick_sec\":%.3f,\"window_sec\":%.3f,\"slo_target_sec\":%.3f,"
          "\"checkpoint\":\"%s\",\"queue_capacity\":%zu},",
          JsonEscape(info.stream_path).c_str(), info.threads, info.tick_sec,
          info.window_sec, info.slo_target_sec,
          JsonEscape(info.checkpoint_path).c_str(), info.queue_capacity);
      body += "\"health\":{";
      if (health != nullptr) {
        const obs::HealthRegistry::Aggregate agg = health->Aggregated();
        body += util::StrPrintf("\"state\":\"%s\",\"reason\":\"%s\","
                                "\"components\":[",
                                obs::ToString(agg.state),
                                JsonEscape(agg.reason).c_str());
        bool first = true;
        for (const auto& c : health->Snapshot()) {
          if (!first) body += ',';
          first = false;
          body += util::StrPrintf(
              "{\"name\":\"%s\",\"state\":\"%s\",\"reason\":\"%s\","
              "\"heartbeat_age_sec\":%.3f}",
              JsonEscape(c.name).c_str(), obs::ToString(c.state),
              JsonEscape(c.reason).c_str(), c.heartbeat_age_sec);
        }
        body += ']';
      } else {
        body += "\"state\":\"ok\",\"reason\":\"\",\"components\":[]";
      }
      body += util::StrPrintf(
          "},\"incidents_logged\":%zu,\"metrics\":",
          incidents == nullptr ? std::size_t{0} : incidents->size());
      body += obs::ToVarzJson(metrics->Snapshot(), metrics->HelpSnapshot());
      body += '}';
      response.content_type = "application/json";
      response.body = std::move(body);
    } else if (request.path == "/healthz") {
      // Liveness: a process that can answer this is alive by definition.
      response.body = "ok\n";
    } else if (request.path == "/readyz") {
      obs::HealthRegistry::Aggregate agg;
      if (health != nullptr) agg = health->Aggregated();
      if (agg.state == obs::HealthState::kOk) {
        response.body = "ok\n";
      } else {
        response.status = 503;
        response.body = util::StrPrintf("%s: %s\n", obs::ToString(agg.state),
                                        agg.reason.c_str());
      }
    } else if (request.path == "/incidents") {
      std::uint64_t since = 0;
      if (const auto param = request.QueryParam("since")) {
        // strtoull would silently accept leading whitespace and signs
        // (a negative wraps to a huge cursor that hides every incident)
        // and saturates on overflow; ParseU64 is digits-only and
        // overflow-checked, so every malformed cursor is a loud 400.
        if (!util::ParseU64(*param, since)) {
          response.status = 400;
          response.body = "bad since parameter: want a non-negative integer\n";
          return response;
        }
      }
      response.content_type = "application/json";
      response.body = incidents == nullptr ? "{\"incidents\":[],\"next_since\":0}"
                                           : incidents->ToJson(since);
    } else if (request.path == "/api/series") {
      if (series == nullptr) {
        response.status = 404;
        response.body = "no time-series store attached to this server\n";
        return response;
      }
      // Tier resolutions and `since` cursors travel as whole simulated
      // seconds; every shipped tier is a whole number of them.
      std::int64_t res_us = series->options().tiers.empty()
                                ? util::kSecond
                                : series->options().tiers.front().resolution_us;
      if (const auto res = request.QueryParam("res")) {
        std::uint64_t sec = 0;
        if (!util::ParseU64(*res, sec) || sec == 0 ||
            !series->HasTier(static_cast<std::int64_t>(sec) * util::kSecond)) {
          response.status = 400;
          response.body =
              "bad res parameter: want a tier resolution in seconds (GET "
              "/api/series lists the tiers)\n";
          return response;
        }
        res_us = static_cast<std::int64_t>(sec) * util::kSecond;
      }
      std::int64_t since_us = -1;
      if (const auto since = request.QueryParam("since")) {
        std::uint64_t sec = 0;
        if (!util::ParseU64(*since, sec)) {
          response.status = 400;
          response.body =
              "bad since parameter: want a non-negative integer of seconds\n";
          return response;
        }
        since_us = static_cast<std::int64_t>(sec) * util::kSecond;
      }
      const auto name = request.QueryParam("name");
      if (!name.has_value()) {
        response.content_type = "application/json";
        response.body = series->ListJson();
      } else if (auto body = series->SeriesJson(*name, res_us, since_us)) {
        response.content_type = "application/json";
        response.body = std::move(*body);
      } else {
        response.status = 404;
        response.body = "unknown series; GET /api/series lists the names\n";
      }
    } else if (request.path == "/api/incidents/timeline") {
      std::uint64_t since = 0;
      if (const auto param = request.QueryParam("since")) {
        // Same digits-only contract as /incidents and /api/series: a
        // malformed cursor is a loud 400, never a silently empty page.
        if (!util::ParseU64(*param, since)) {
          response.status = 400;
          response.body = "bad since parameter: want a non-negative integer\n";
          return response;
        }
      }
      std::string body =
          "{\"t0_sec\":" + obs::JsonDouble(util::ToSeconds(info.t0)) +
          ",\"tick_sec\":" + obs::JsonDouble(util::ToSeconds(info.tick)) +
          ",\"incidents\":[";
      bool first = true;
      if (incidents != nullptr) {
        for (const IncidentLog::Entry& e : incidents->Since(since)) {
          const Incident& inc = e.incident;
          if (!first) body += ',';
          first = false;
          // The exemplar points at the replay tick whose boundary
          // surfaced this incident: detected_at always sits on the tick
          // grid, so the index (and the `live.tick` slice carrying it as
          // an annotation) is exact, not a nearest-neighbor guess.
          const std::int64_t tick_index =
              info.tick > 0 ? (inc.detected_at - info.t0) / info.tick : 0;
          body += util::StrPrintf(
              "{\"seq\":%llu,\"kind\":\"%s\",\"begin_sec\":%s,"
              "\"end_sec\":%s,\"detected_at_sec\":%s,"
              "\"detection_latency_sec\":%s,\"stem\":\"%s\","
              "\"top_sequence\":\"%s\",\"summary\":\"%s\","
              "\"feed_degraded\":%s,\"load_shed\":%s,"
              "\"exemplar\":{\"span\":\"live.tick\",\"tick\":%lld}}",
              static_cast<unsigned long long>(e.seq), ToString(inc.kind),
              obs::JsonDouble(util::ToSeconds(inc.begin)).c_str(),
              obs::JsonDouble(util::ToSeconds(inc.end)).c_str(),
              obs::JsonDouble(util::ToSeconds(inc.detected_at)).c_str(),
              obs::JsonDouble(inc.detection_latency_sec).c_str(),
              JsonEscape(inc.stem_label).c_str(),
              JsonEscape(inc.top_sequence).c_str(),
              JsonEscape(inc.summary).c_str(),
              inc.feed_degraded ? "true" : "false",
              inc.load_shed ? "true" : "false",
              static_cast<long long>(tick_index));
        }
      }
      body += "],\"next_since\":" +
              std::to_string(incidents == nullptr ? std::size_t{0}
                                                  : incidents->size()) +
              "}";
      response.content_type = "application/json";
      response.body = std::move(body);
    } else if (request.path.size() > 24 &&
               request.path.starts_with("/api/incidents/") &&
               request.path.ends_with("/evidence")) {
      // /api/incidents/<id>/evidence — the provenance ledger's record.
      const std::string_view id_text =
          std::string_view(request.path).substr(15, request.path.size() - 24);
      std::uint64_t id = 0;
      if (!util::ParseU64(id_text, id)) {
        response.status = 400;
        response.body = "bad incident id: want a non-negative integer\n";
        return response;
      }
      if (provenance == nullptr) {
        response.status = 404;
        response.body = "no provenance ledger attached to this server\n";
        return response;
      }
      if (auto body = provenance->EvidenceJson(id)) {
        response.content_type = "application/json";
        response.body = std::move(*body);
      } else {
        response.status = 404;
        response.body = "unknown incident (or its evidence was evicted); "
                        "GET /api/incidents/timeline lists the log\n";
      }
    } else if (dashboard && request.path == "/dashboard") {
      response.content_type = "text/html; charset=utf-8";
      response.body = obs::DashboardHtml();
    } else {
      response.status = 404;
      response.body = "not found; try /metrics /varz /healthz /readyz "
                      "/incidents?since=N /api/series "
                      "/api/incidents/timeline "
                      "/api/incidents/<id>/evidence\n";
    }
    return response;
  };
}

}  // namespace ranomaly::core
