#include "core/live.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <set>
#include <utility>

#include "util/strings.h"

namespace ranomaly::core {

namespace {

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::StrPrintf("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string PeerComponentName(bgp::Ipv4Addr peer) {
  return "peer/" + peer.ToString();
}

// An open or closed degraded-feed span observed during live replay; the
// live equivalent of collector::FeedGapWindows over a full stream.
struct LiveGap {
  bgp::Ipv4Addr peer;
  util::SimTime begin = 0;
  util::SimTime end = 0;
  bool closed = false;
};

}  // namespace

// ---------------------------------------------------------------------------
// IncidentLog

std::uint64_t IncidentLog::Append(Incident incident) {
  std::lock_guard<std::mutex> lock(mu_);
  const std::uint64_t seq = entries_.size() + 1;
  entries_.push_back(Entry{seq, std::move(incident)});
  return seq;
}

std::vector<IncidentLog::Entry> IncidentLog::Since(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry> out;
  if (since < entries_.size()) {
    out.assign(entries_.begin() + static_cast<std::ptrdiff_t>(since),
               entries_.end());
  }
  return out;
}

std::size_t IncidentLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

std::string IncidentLog::ToJson(std::uint64_t since) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"incidents\":[";
  bool first = true;
  for (std::size_t i = since; i < entries_.size(); ++i) {
    const Entry& e = entries_[i];
    const Incident& inc = e.incident;
    if (!first) out += ',';
    first = false;
    out += util::StrPrintf(
        "{\"seq\":%llu,\"kind\":\"%s\",\"begin_sec\":%.3f,\"end_sec\":%.3f,"
        "\"event_count\":%zu,\"prefix_count\":%zu,\"stem\":\"%s\","
        "\"summary\":\"%s\",\"detected_at_sec\":%.3f,"
        "\"detection_latency_sec\":%.3f,\"feed_degraded\":%s}",
        static_cast<unsigned long long>(e.seq), ToString(inc.kind),
        util::ToSeconds(inc.begin), util::ToSeconds(inc.end), inc.event_count,
        inc.prefix_count, JsonEscape(inc.stem_label).c_str(),
        JsonEscape(inc.summary).c_str(), util::ToSeconds(inc.detected_at),
        inc.detection_latency_sec, inc.feed_degraded ? "true" : "false");
  }
  out += util::StrPrintf("],\"next_since\":%llu}",
                         static_cast<unsigned long long>(entries_.size()));
  return out;
}

// ---------------------------------------------------------------------------
// PeerBoard

PeerBoard::State& PeerBoard::Of(bgp::Ipv4Addr peer) {
  for (auto& [addr, state] : peers_) {
    if (addr == peer.value()) return state;
  }
  peers_.emplace_back(peer.value(), State{});
  State& state = peers_.back().second;
  state.row.peer = peer;
  state.row.first_seen = -1;
  return state;
}

void PeerBoard::Observe(const bgp::Event& event) {
  State& s = Of(event.peer);
  Row& row = s.row;
  if (row.first_seen < 0) row.first_seen = event.time;
  row.last_seen = event.time;
  switch (event.type) {
    case bgp::EventType::kAnnounce:
      ++row.announces;
      break;
    case bgp::EventType::kWithdraw:
      ++row.withdraws;
      break;
    case bgp::EventType::kFeedGap:
      if (!row.degraded) {
        row.degraded = true;
        ++row.gaps;
        row.last_gap = event.time;
        s.gap_open = event.time;
      }
      break;
    case bgp::EventType::kResync:
      if (row.degraded) {
        row.degraded = false;
        ++row.reconnects;
        s.gap_sec += util::ToSeconds(event.time - s.gap_open);
        s.gap_open = -1;
      }
      break;
  }
}

void PeerBoard::Finish(util::SimTime end) {
  for (auto& [addr, s] : peers_) {
    if (s.gap_open >= 0 && end > s.gap_open) {
      // Open gap: accrue degraded time up to the close of books, but keep
      // the gap open (the peer is still degraded).
      s.gap_sec += util::ToSeconds(end - s.gap_open);
      s.gap_open = end;
    }
    if (end > s.row.last_seen) s.row.last_seen = end;
  }
}

std::vector<PeerBoard::Row> PeerBoard::Rows() const {
  std::vector<Row> out;
  out.reserve(peers_.size());
  for (const auto& [addr, s] : peers_) {
    Row row = s.row;
    if (row.first_seen < 0) row.first_seen = 0;
    const double span = util::ToSeconds(row.last_seen - row.first_seen);
    row.uptime_sec = std::max(0.0, span - s.gap_sec);
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(), [](const Row& a, const Row& b) {
    return a.peer.value() < b.peer.value();
  });
  return out;
}

std::string FormatPeerTable(const std::vector<PeerBoard::Row>& rows) {
  std::string out = util::StrPrintf(
      "%-16s %-9s %12s %10s %10s %6s %6s %11s %10s\n", "PEER", "STATE",
      "UPTIME", "ANNOUNCES", "WITHDRAWS", "GAPS", "RECON", "QUARANTINED",
      "LAST-GAP");
  for (const PeerBoard::Row& row : rows) {
    const std::string uptime =
        util::FormatDuration(util::FromSeconds(row.uptime_sec));
    const std::string last_gap =
        row.last_gap < 0 ? "-" : util::FormatDuration(row.last_gap);
    out += util::StrPrintf(
        "%-16s %-9s %12s %10llu %10llu %6llu %6llu %11llu %10s\n",
        row.peer.ToString().c_str(), row.degraded ? "DEGRADED" : "OK",
        uptime.c_str(), static_cast<unsigned long long>(row.announces),
        static_cast<unsigned long long>(row.withdraws),
        static_cast<unsigned long long>(row.gaps),
        static_cast<unsigned long long>(row.reconnects),
        static_cast<unsigned long long>(row.quarantined), last_gap.c_str());
  }
  return out;
}

// ---------------------------------------------------------------------------
// LiveRunner

std::vector<double> DetectionLatencyBounds() {
  return {1, 2, 5, 10, 15, 30, 60, 120, 300, 900};
}

LiveRunner::LiveRunner(LiveOptions options, obs::HealthRegistry* health,
                       IncidentLog* incidents)
    : options_(std::move(options)),
      pipeline_(options_.pipeline),
      health_(health),
      incidents_(incidents) {
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  reg.SetHelp("incident_detection_latency_seconds",
              "Simulated seconds from an incident's triggering burst to the "
              "analysis tick that first surfaced it.");
  reg.SetHelp("incident_detection_slo_ratio",
              "Fraction of detected incidents whose detection latency met "
              "the SLO target.");
  reg.SetHelp("serve_ticks_total", "Live replay analysis ticks executed.");
  reg.SetHelp("serve_events_ingested_total",
              "Events ingested by the live replay.");
  reg.SetHelp("serve_incidents_total",
              "Distinct incidents surfaced by the live replay.");
  reg.SetHelp("serve_replay_position_seconds",
              "Current simulated-time position of the live replay.");
  reg.SetHelp("health_component_state",
              "Health state per component: 0=ok 1=degraded 2=down.");
}

LiveStats LiveRunner::Run(
    const collector::EventStream& stream,
    const std::atomic<bool>* keep_going,
    const std::function<void(const LiveStats&)>& on_tick) {
  LiveStats stats;
  obs::MetricsRegistry& reg = obs::MetricsRegistry::Global();
  const obs::MetricId latency_id = reg.Histogram(
      "incident_detection_latency_seconds", DetectionLatencyBounds());
  const obs::MetricId slo_id = reg.Gauge("incident_detection_slo_ratio");
  const obs::MetricId ticks_id = reg.Counter("serve_ticks_total");
  const obs::MetricId ingested_id = reg.Counter("serve_events_ingested_total");
  const obs::MetricId incidents_id = reg.Counter("serve_incidents_total");
  const obs::MetricId position_id = reg.Gauge("serve_replay_position_seconds");

  obs::HealthRegistry::ComponentId replay_id = 0;
  if (health_ != nullptr) {
    replay_id = health_->Register("replay");
    if (options_.heartbeat_deadline_sec > 0) {
      health_->SetHeartbeatDeadline(replay_id, options_.heartbeat_deadline_sec);
    }
  }
  const auto peer_health = [this](bgp::Ipv4Addr peer, obs::HealthState state,
                                  std::string reason) {
    if (health_ == nullptr) return;
    const auto id = health_->Register(PeerComponentName(peer));
    health_->SetState(id, state, std::move(reason));
  };
  // Mirror health states into labeled gauges so they scrape.
  const auto sync_health_gauges = [this, &reg]() {
    if (health_ == nullptr) return;
    for (const auto& c : health_->Snapshot()) {
      const obs::MetricId id = reg.Gauge(
          "health_component_state" +
          obs::PromLabels({{"component", c.name}}));
      reg.Set(id, static_cast<double>(c.state));
    }
  };

  if (stream.empty()) {
    if (health_ != nullptr) {
      health_->SetState(replay_id, obs::HealthState::kOk, "replay complete");
    }
    sync_health_gauges();
    return stats;
  }

  const auto& events = stream.events();
  const util::SimTime t0 = events.front().time;
  std::size_t next = 0;
  std::vector<bgp::Event> window;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_stems;
  std::vector<LiveGap> gaps;
  PeerBoard board;
  bool complete = false;

  util::SimTime tick_end = t0 + options_.tick;
  while (true) {
    if (keep_going != nullptr &&
        !keep_going->load(std::memory_order_relaxed)) {
      break;
    }
    // Ingest this tick's batch; the batch end is the ingest stamp — the
    // earliest moment the pipeline could have analyzed these events.
    while (next < events.size() && events[next].time < tick_end) {
      bgp::Event event = events[next];
      ++next;
      event.ingest_tick = tick_end;
      board.Observe(event);
      if (event.type == bgp::EventType::kFeedGap) {
        bool already_open = false;
        for (const LiveGap& g : gaps) {
          already_open |= !g.closed && g.peer == event.peer;
        }
        if (!already_open) {
          gaps.push_back(LiveGap{event.peer, event.time, event.time, false});
        }
        peer_health(event.peer, obs::HealthState::kDegraded,
                    util::StrPrintf("feed gap open since %.0fs",
                                    util::ToSeconds(event.time)));
      } else if (event.type == bgp::EventType::kResync) {
        for (auto it = gaps.rbegin(); it != gaps.rend(); ++it) {
          if (!it->closed && it->peer == event.peer) {
            it->closed = true;
            it->end = event.time;
            break;
          }
        }
        peer_health(event.peer, obs::HealthState::kOk, "");
      } else if (health_ != nullptr) {
        health_->Register(PeerComponentName(event.peer));
      }
      ++stats.events_ingested;
      reg.Add(ingested_id, 1);
      window.push_back(std::move(event));
    }
    // Slide the window.
    const util::SimTime window_begin = tick_end - options_.window;
    const auto keep_from = std::find_if(
        window.begin(), window.end(),
        [window_begin](const bgp::Event& e) { return e.time >= window_begin; });
    window.erase(window.begin(), keep_from);

    for (Incident& inc : pipeline_.AnalyzeWindow(window)) {
      if (!seen_stems.insert(inc.stem_key).second) continue;  // already known
      inc.detected_at = tick_end;
      inc.detection_latency_sec = util::ToSeconds(tick_end - inc.begin);
      for (const LiveGap& gap : gaps) {
        const util::SimTime gap_end = gap.closed ? gap.end : tick_end;
        if (inc.begin <= gap_end && gap.begin <= inc.end) {
          inc.feed_degraded = true;
          inc.summary += " [feed-degraded]";
          break;
        }
      }
      reg.Observe(latency_id, inc.detection_latency_sec);
      reg.Add(incidents_id, 1);
      ++stats.incidents;
      if (inc.detection_latency_sec <= options_.slo_target_sec) {
        ++stats.incidents_within_slo;
      }
      if (incidents_ != nullptr) incidents_->Append(std::move(inc));
    }
    if (stats.incidents > 0) {
      reg.Set(slo_id, static_cast<double>(stats.incidents_within_slo) /
                          static_cast<double>(stats.incidents));
    }

    ++stats.ticks;
    stats.clock = tick_end;
    reg.Add(ticks_id, 1);
    reg.Set(position_id, util::ToSeconds(tick_end));
    if (health_ != nullptr) health_->Heartbeat(replay_id);
    sync_health_gauges();
    if (on_tick) on_tick(stats);
    if (next >= events.size()) {
      complete = true;
      break;
    }
    tick_end += options_.tick;
  }

  if (health_ != nullptr && complete) {
    // The replay is done: it no longer makes progress, so stall detection
    // must stop accusing it.
    health_->SetHeartbeatDeadline(replay_id, 0.0);
    health_->SetState(replay_id, obs::HealthState::kOk, "replay complete");
    sync_health_gauges();
  }
  return stats;
}

// ---------------------------------------------------------------------------
// Ops handler

obs::HttpServer::Handler MakeOpsHandler(obs::MetricsRegistry* metrics,
                                        obs::HealthRegistry* health,
                                        IncidentLog* incidents,
                                        OpsInfo info) {
  metrics->SetHelp("http_requests_total",
                   "HTTP requests whose handler ran (any status).");
  metrics->SetHelp("http_requests_rejected_total",
                   "HTTP requests rejected at the protocol level.");
  return [metrics, health, incidents, info = std::move(info)](
             const obs::HttpRequest& request) -> obs::HttpResponse {
    obs::HttpResponse response;
    if (request.path == "/metrics") {
      response.content_type = "text/plain; version=0.0.4; charset=utf-8";
      response.body = metrics->ToPrometheus();
    } else if (request.path == "/varz") {
      std::string body = "{\"build\":{\"project\":\"ranomaly\",\"tracing\":";
#ifdef RANOMALY_NO_TRACING
      body += "false";
#else
      body += "true";
#endif
      body += util::StrPrintf(
          "},\"config\":{\"stream\":\"%s\",\"threads\":%zu,"
          "\"tick_sec\":%.3f,\"window_sec\":%.3f,\"slo_target_sec\":%.3f},",
          JsonEscape(info.stream_path).c_str(), info.threads, info.tick_sec,
          info.window_sec, info.slo_target_sec);
      body += "\"health\":{";
      if (health != nullptr) {
        const obs::HealthRegistry::Aggregate agg = health->Aggregated();
        body += util::StrPrintf("\"state\":\"%s\",\"reason\":\"%s\","
                                "\"components\":[",
                                obs::ToString(agg.state),
                                JsonEscape(agg.reason).c_str());
        bool first = true;
        for (const auto& c : health->Snapshot()) {
          if (!first) body += ',';
          first = false;
          body += util::StrPrintf(
              "{\"name\":\"%s\",\"state\":\"%s\",\"reason\":\"%s\","
              "\"heartbeat_age_sec\":%.3f}",
              JsonEscape(c.name).c_str(), obs::ToString(c.state),
              JsonEscape(c.reason).c_str(), c.heartbeat_age_sec);
        }
        body += ']';
      } else {
        body += "\"state\":\"ok\",\"reason\":\"\",\"components\":[]";
      }
      body += util::StrPrintf(
          "},\"incidents_logged\":%zu,\"metrics\":",
          incidents == nullptr ? std::size_t{0} : incidents->size());
      body += obs::ToVarzJson(metrics->Snapshot());
      body += '}';
      response.content_type = "application/json";
      response.body = std::move(body);
    } else if (request.path == "/healthz") {
      // Liveness: a process that can answer this is alive by definition.
      response.body = "ok\n";
    } else if (request.path == "/readyz") {
      obs::HealthRegistry::Aggregate agg;
      if (health != nullptr) agg = health->Aggregated();
      if (agg.state == obs::HealthState::kOk) {
        response.body = "ok\n";
      } else {
        response.status = 503;
        response.body = util::StrPrintf("%s: %s\n", obs::ToString(agg.state),
                                        agg.reason.c_str());
      }
    } else if (request.path == "/incidents") {
      std::uint64_t since = 0;
      if (const auto param = request.QueryParam("since")) {
        char* end = nullptr;
        since = std::strtoull(param->c_str(), &end, 10);
        if (param->empty() || end == nullptr || *end != '\0') {
          response.status = 400;
          response.body = "bad since parameter: want a non-negative integer\n";
          return response;
        }
      }
      response.content_type = "application/json";
      response.body = incidents == nullptr ? "{\"incidents\":[],\"next_since\":0}"
                                           : incidents->ToJson(since);
    } else {
      response.status = 404;
      response.body = "not found; try /metrics /varz /healthz /readyz "
                      "/incidents?since=N\n";
    }
    return response;
  };
}

}  // namespace ranomaly::core
