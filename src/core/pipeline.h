// The real-time analysis pipeline: event stream -> spike windows ->
// Stemming -> classified incidents.
//
// This is the deployment shape the paper describes (Section III-B and V):
// spikes found by the rate detector are stemmed at spike timescale, and a
// long-window pass catches the low-grade anomalies that never spike —
// the Section IV-E "grass" and the IV-F single-prefix oscillation, which
// dominate correlation over hours even though they are rate-invisible.
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "collector/event_stream.h"
#include "core/incident.h"
#include "stemming/stemming.h"
#include "util/thread_pool.h"

namespace ranomaly::core {

struct PipelineOptions {
  // Spike detection (Fig 8 style).
  util::SimDuration spike_bucket = util::kMinute;
  double spike_factor = 5.0;
  // Pad each spike window by this margin on both sides.
  util::SimDuration spike_margin = 30 * util::kSecond;
  // Also stem the full stream (the "long window"); catches low-grade
  // persistent anomalies.
  bool long_window_pass = true;
  stemming::StemmingOptions stemming;
  // Components claiming less than this fraction of a window are noise.
  double min_component_fraction = 0.02;
  // Report components that classify as kUnknown (strong correlation with
  // no anomaly signature — usually shared-path mass, not an incident).
  bool include_unknown = false;
  // Worker threads for the analysis fan-out (spike windows run
  // concurrently; stemming shards its counting).  0 means
  // util::ThreadPool::DefaultThreadCount(), i.e. RANOMALY_THREADS or the
  // hardware.  Results are bit-identical for every value.
  std::size_t threads = 0;
};

class Pipeline {
 public:
  explicit Pipeline(PipelineOptions options = {});

  // Full analysis: spike windows first (concurrently when the pipeline
  // has threads; incidents merge in spike order, so results are
  // bit-identical to serial), then the long-window pass over the grass;
  // incidents are deduplicated by stem.  The per-stage perf breakdown
  // (events encoded, symbols interned, bigram table sizes, wall seconds
  // per stage) accumulates on obs::MetricsRegistry::Global() under the
  // pipeline_* and stemming_* names (docs/OBSERVABILITY.md).
  std::vector<Incident> Analyze(const collector::EventStream& stream) const;

  // Stems and classifies one window.
  std::vector<Incident> AnalyzeWindow(
      std::span<const bgp::Event> events) const;

  // Evidence extraction & classification (exposed for tests/benches).
  static IncidentEvidence ExtractEvidence(
      std::span<const bgp::Event> events,
      const stemming::Component& component);
  static IncidentKind Classify(const IncidentEvidence& evidence,
                               std::size_t prefix_count);

#ifndef RANOMALY_NO_PROVENANCE
  // Builds Incident::provenance (sampled contributing events, stem
  // classes, correlation path) for the provenance ledger, bounded by
  // `caps`.  Not called during analysis: AnalyzeWindow re-derives every
  // component each tick and the live runner discards already-seen
  // stems, so the (string-heavy) evidence build runs only for the
  // incidents that survive dedup — the caller invokes this after.
  static void PopulateProvenance(std::span<const bgp::Event> events,
                                 const obs::ProvenanceCaps& caps,
                                 Incident& inc);
#endif

  const PipelineOptions& options() const { return options_; }

 private:
  Incident MakeIncident(std::span<const bgp::Event> events,
                        const stemming::StemmingResult& result,
                        const stemming::Component& component) const;

  PipelineOptions options_;
  // Shared by stemming shard counts and the spike-window fan-out.  Always
  // created: a one-thread pool spawns no workers and runs inline, so the
  // fan-out takes the same instrumented path at every thread count.
  std::unique_ptr<util::ThreadPool> pool_;
};

}  // namespace ranomaly::core
