#include "core/correlate.h"

#include <algorithm>
#include <set>
#include <unordered_set>

#include "util/strings.h"

namespace ranomaly::core {
namespace {

std::string DescribeClause(const net::RouteMapClause& clause) {
  std::string out = clause.permit ? "permit" : "deny";
  if (clause.set_local_pref) {
    out += util::StrPrintf(", set local-preference %u",
                           *clause.set_local_pref);
  }
  if (clause.set_med) {
    out += util::StrPrintf(", set metric %u", *clause.set_med);
  }
  for (const bgp::Community c : clause.set_communities) {
    out += ", set community " + c.ToString();
  }
  if (clause.prepend_count > 0) {
    out += util::StrPrintf(", prepend x%u", clause.prepend_count);
  }
  return out;
}

}  // namespace

std::vector<PolicyFinding> CorrelatePolicies(
    const Incident& incident, std::span<const bgp::Event> window_events,
    std::span<const NamedConfig> configs) {
  // Gather the communities riding the incident's events.
  std::set<bgp::Community> communities;
  for (const std::size_t idx : incident.component.event_indices) {
    for (const bgp::Community c : window_events[idx].attrs.communities) {
      communities.insert(c);
    }
  }

  std::vector<PolicyFinding> findings;
  for (const bgp::Community c : communities) {
    for (const NamedConfig& named : configs) {
      if (named.config == nullptr) continue;
      for (const auto& use : named.config->FindClausesMatchingCommunity(c)) {
        PolicyFinding f;
        f.community = c;
        f.router_name = named.router_name;
        f.route_map_name = use.map_name;
        f.clause_index = use.clause_index;
        f.action = DescribeClause(*use.clause);
        findings.push_back(std::move(f));
      }
    }
  }
  return findings;
}

TrafficImpact AssessTrafficImpact(const Incident& incident,
                                  const traffic::TrafficMatrix& matrix,
                                  double elephant_volume_fraction) {
  TrafficImpact impact;
  const auto elephants = matrix.Elephants(elephant_volume_fraction);
  const std::unordered_set<bgp::Prefix, bgp::PrefixHash> elephant_set(
      elephants.begin(), elephants.end());
  for (const bgp::Prefix& p : incident.component.prefixes) {
    impact.bytes += matrix.VolumeOf(p);
    if (elephant_set.contains(p)) ++impact.elephant_prefixes;
  }
  if (matrix.TotalVolume() > 0) {
    impact.volume_fraction = static_cast<double>(impact.bytes) /
                             static_cast<double>(matrix.TotalVolume());
  }
  return impact;
}

IgpCorrelation CorrelateIgp(const Incident& incident, const igp::LsaLog& log,
                            util::SimDuration radius) {
  IgpCorrelation out;
  const util::SimTime center = (incident.begin + incident.end) / 2;
  const util::SimDuration half_span = (incident.end - incident.begin) / 2;
  out.lsa_events = log.EventsNear(center, half_span + radius);
  out.igp_active = std::any_of(
      out.lsa_events.begin(), out.lsa_events.end(), [](const igp::LsaEvent& e) {
        return e.disposition != igp::LsaDisposition::kIgnoredStale;
      });
  return out;
}

}  // namespace ranomaly::core
