// The live operations layer behind `ranomaly serve` and `ranomaly
// peers`: tick-based replay of an event stream through the analysis
// pipeline, an append-only incident log with monotonic sequence numbers
// (the `/incidents?since=` resumption contract), a per-peer health
// scoreboard, and the HTTP handler that routes the operations endpoints
// (/metrics, /varz, /healthz, /readyz, /incidents).
//
// Determinism: every detection-latency input is *simulated* time — the
// ingest tick is the (deterministic) batch boundary an event entered the
// pipeline at, AnalyzeWindow is bit-identical for any thread count, and
// incidents dedup on their stem key — so the
// incident_detection_latency_seconds buckets are bit-identical across
// RANOMALY_THREADS settings.  Wall time appears only in pacing
// (--pace-ms) and heartbeat metering, never in what gets detected or
// when (DESIGN.md determinism rule).
//
// Durability: with LiveOptions::checkpoint_path set, the runner
// restores its full pipeline state (stream cursor, analysis window and
// ingest queue, stem dedup set, incident log, feed-gap and shed
// windows, peer scoreboard, SLO histogram) from the last RNC1 v2
// checkpoint at startup and persists it every checkpoint_every_ticks
// ticks at a tick boundary, so a SIGKILLed `serve` resumes and replays
// forward to a bit-identical incident stream — `/incidents?since=N`
// continues seamlessly across the restart (core/live_checkpoint.h).
//
// Overload: with ShedOptions::queue_capacity set, a bounded ingest
// queue sits between the stream and the analysis window, and a
// watermark-driven degradation ladder sheds work as the queue fills —
// L1 suspends tracing, L2 halves the analysis cadence (widening each
// analysis batch), L3 samples arrivals deterministically and marks the
// affected span so incidents detected there carry `load_shed` — with
// hysteresis on the way down.  Every stage is reported through
// obs::HealthRegistry as DEGRADED with a reason and counted in metrics.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "collector/event_stream.h"
#include "core/incident.h"
#include "core/pipeline.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "obs/provenance.h"
#include "obs/timeseries.h"
#include "util/time.h"

namespace ranomaly::core {

// Append-only incident history with monotonic sequence numbers starting
// at 1.  `Since(n)` returns entries with seq > n, so a client that
// remembers the `next_since` from its last poll resumes without loss or
// duplication.  Mutex-guarded: the replay thread appends while the HTTP
// thread reads.
class IncidentLog {
 public:
  struct Entry {
    std::uint64_t seq = 0;
    Incident incident;
  };

  // Returns the assigned sequence number.
  std::uint64_t Append(Incident incident);

  // Checkpoint restore: replaces the log with `entries`, whose seqs must
  // be exactly 1..N in order (returns false and leaves the log empty
  // otherwise — a corrupt history must not be resumed).
  bool Restore(std::vector<Entry> entries);

  // Entries with seq > `since` (0 = everything), in sequence order.
  std::vector<Entry> Since(std::uint64_t since) const;

  std::size_t size() const;

  // {"incidents":[...],"next_since":N} for entries with seq > since.
  // next_since is the latest seq overall (so an empty poll still
  // advances the client's cursor correctly: it stays put).
  std::string ToJson(std::uint64_t since) const;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

// Per-peer feed scoreboard derived from the event stream's markers —
// the same facts the live health model exposes, computed once and worn
// by two frontends (`ranomaly peers` table, serve health components).
class PeerBoard {
 public:
  struct Row {
    bgp::Ipv4Addr peer;
    bool degraded = false;       // inside an unclosed feed gap
    std::uint64_t announces = 0;
    std::uint64_t withdraws = 0;
    std::uint64_t reconnects = 0;   // closed gaps (kResync markers)
    std::uint64_t gaps = 0;         // kFeedGap markers
    std::uint64_t quarantined = 0;  // corrupt frames (0 for file streams)
    util::SimTime first_seen = 0;
    util::SimTime last_seen = 0;
    util::SimTime last_gap = -1;    // time of the latest kFeedGap, -1 none
    double uptime_sec = 0.0;        // observed span minus in-gap time
  };

  void Observe(const bgp::Event& event);
  // Closes the books at `end` (open gaps accrue degraded time up to it).
  void Finish(util::SimTime end);

  // Rows sorted by peer address.
  std::vector<Row> Rows() const;

  // Checkpoint export/restore: the full internal state (rows plus open
  // gap bookkeeping) in observation order, so a restored board continues
  // bit-identically.
  struct Persisted {
    Row row;
    util::SimTime gap_open = -1;   // begin of the currently open gap
    double gap_sec = 0.0;          // accumulated in-gap seconds
  };
  std::vector<Persisted> Export() const;
  void Restore(std::vector<Persisted> states);

 private:
  struct State {
    Row row;
    util::SimTime gap_open = -1;   // begin of the currently open gap
    double gap_sec = 0.0;          // accumulated in-gap seconds
  };
  std::vector<std::pair<std::uint32_t, State>> peers_;  // keyed by addr
  State& Of(bgp::Ipv4Addr peer);
};

// Renders the `ranomaly peers` scoreboard table.
std::string FormatPeerTable(const std::vector<PeerBoard::Row>& rows);

// An open or closed degraded-feed span observed during live replay; the
// live equivalent of collector::FeedGapWindows over a full stream.
// Public (and persisted) so incident gap-marking survives a restart.
struct LiveGap {
  bgp::Ipv4Addr peer;
  util::SimTime begin = 0;
  util::SimTime end = 0;
  bool closed = false;
};

// A span where the degradation ladder was shedding events (sampling or
// queue overflow); incidents overlapping one are marked `load_shed`.
struct ShedWindow {
  util::SimTime begin = 0;
  util::SimTime end = 0;
  bool closed = false;
};

// Backpressure between ingest and analysis.  Disabled by default
// (queue_capacity 0): the queue is then an unbounded pass-through and
// replay behaves exactly as before.  The ladder escalates a stage when
// the end-of-ingest queue depth crosses a watermark fraction of
// capacity, and de-escalates one stage after `recovery_ticks`
// consecutive ticks below the stage's watermark (hysteresis):
//   L1 (>= l1_watermark): suspend span tracing
//   L2 (>= l2_watermark): halve the analysis cadence (each analysis
//       covers two ingest batches — a widened batch window)
//   L3 (>= l3_watermark): deterministically sample arrivals, keeping 1
//       in sample_stride routing events, inside a marked shed window
// Markers (GAP/SYNC) are never shed: feed-health bookkeeping stays
// exact under overload.  The queue never exceeds queue_capacity;
// arrivals beyond it are dropped and counted as shed.
struct ShedOptions {
  std::size_t queue_capacity = 0;  // max queued routing events; 0 = off
  // Max routing events drained from the queue into the analysis window
  // per tick; 0 = unlimited (the queue then never grows).
  std::size_t service_rate = 0;
  double l1_watermark = 0.50;
  double l2_watermark = 0.75;
  double l3_watermark = 0.90;
  std::size_t sample_stride = 4;   // keep 1 in N at L3
  std::uint64_t recovery_ticks = 3;
};

struct LiveOptions {
  PipelineOptions pipeline;
  // Analysis cadence: events are ingested in [tick] batches; each batch
  // end is the ingest tick stamped on its events.
  util::SimDuration tick = 10 * util::kSecond;
  // Sliding analysis window handed to the pipeline each tick.
  util::SimDuration window = 5 * util::kMinute;
  // Detection-latency SLO target (simulated seconds, burst -> surfaced).
  double slo_target_sec = 30.0;
  // Mark the replay heartbeat DEGRADED if a tick stalls past this many
  // wall seconds; 0 disables.
  double heartbeat_deadline_sec = 0.0;
  // Overload shedding (see ShedOptions).
  ShedOptions shed;
  // Analysis-tier durability: when non-empty, restore from this RNC1
  // checkpoint at startup (if present and valid) and persist the live
  // state there every `checkpoint_every_ticks` ticks plus once on exit.
  std::string checkpoint_path;
  std::uint64_t checkpoint_every_ticks = 16;
  // Failed writes retry with exponential backoff (1, 2, 4, ... ticks)
  // capped at this bound; the daemon keeps analyzing throughout.
  std::uint64_t checkpoint_retry_max_backoff_ticks = 32;
};

struct LiveStats {
  std::uint64_t ticks = 0;
  std::uint64_t events_ingested = 0;
  std::uint64_t incidents = 0;
  std::uint64_t incidents_within_slo = 0;
  util::SimTime clock = 0;  // replay position (end of last tick)
  // Overload-ladder observability (end-of-tick values).
  int shed_level = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t events_shed = 0;   // sampled out or dropped at capacity
  std::uint64_t shed_transitions = 0;
  // Durability observability.
  std::uint64_t checkpoint_writes = 0;
  std::uint64_t checkpoint_failures = 0;
  bool restored = false;  // this run resumed from a checkpoint
};

// Drives the tick replay.  Health/incident/series/provenance sinks are
// borrowed, not owned; pass nullptr to skip any.  Metrics always record
// to MetricsRegistry::Global().  With a series store attached, the
// runner samples the registry into it at every tick boundary (sim-time
// stamps), restores its history from the checkpoint's SERS section, and
// includes it in every checkpoint it cuts.  With a provenance ledger
// attached, the pipeline builds an evidence record per incident
// (PipelineOptions::provenance is forced on, caps copied from the
// ledger) and the runner attaches it under the incident's log seq,
// restoring/persisting the ledger through the PROV section the same
// way.
class LiveRunner {
 public:
  LiveRunner(LiveOptions options, obs::HealthRegistry* health,
             IncidentLog* incidents, obs::TimeSeriesStore* series = nullptr,
             obs::ProvenanceLedger* provenance = nullptr);

  // Replays `stream` tick by tick; checks `keep_going` (when non-null)
  // before each tick and stops early when it reads false.  `on_tick`
  // (when set) runs after each tick with the running stats — the serve
  // CLI paces and prints there.  Returns the final stats.
  LiveStats Run(const collector::EventStream& stream,
                const std::atomic<bool>* keep_going = nullptr,
                const std::function<void(const LiveStats&)>& on_tick = {});

 private:
  LiveOptions options_;
  Pipeline pipeline_;
  obs::HealthRegistry* health_;
  IncidentLog* incidents_;
  obs::TimeSeriesStore* series_;
  obs::ProvenanceLedger* provenance_;
};

// Static facts the /varz payload reports alongside the metric snapshot.
struct OpsInfo {
  std::string stream_path;
  std::size_t threads = 0;
  double slo_target_sec = 0.0;
  double tick_sec = 0.0;
  double window_sec = 0.0;
  std::string checkpoint_path;      // empty = checkpointing off
  std::size_t queue_capacity = 0;   // 0 = backpressure off
  // Exact-integer replay geometry (microseconds) for the incident
  // timeline: t0 is the first stream event time, tick the cadence.
  // The /api/incidents/timeline handler derives each incident's
  // trace-exemplar tick index as (detected_at - t0) / tick.
  std::int64_t t0 = 0;
  std::int64_t tick = 0;
};

// Routes the operations endpoints.  All sinks are borrowed and must
// outlive the returned handler:
//   GET /metrics            Prometheus exposition (text/plain; version=0.0.4)
//   GET /varz               full JSON state dump
//   GET /healthz            liveness: 200 while the process can answer
//   GET /readyz             readiness: HealthRegistry worst-of; 503 names
//                           the offending components
//   GET /incidents?since=N  incident log entries with seq > N (400 on a
//                           malformed `since`)
// With a time-series store attached (may be nullptr):
//   GET /api/series                       store inventory + tier list
//   GET /api/series?name=N&res=R&since=S  one series at tier R (seconds,
//                                         default finest), points after S
//   GET /api/incidents/timeline?since=N   incidents with seq > N (default
//                                         0) + replay geometry +
//                                         per-incident trace exemplar
//                                         (400 on a malformed `since`)
// With a provenance ledger attached (may be nullptr):
//   GET /api/incidents/<id>/evidence      the incident's evidence record
//                                         (400 on a malformed id, 404
//                                         when unknown or evicted)
// With `dashboard` set:
//   GET /dashboard          the embedded single-file HTML dashboard
// Anything else is 404.
obs::HttpServer::Handler MakeOpsHandler(
    obs::MetricsRegistry* metrics, obs::HealthRegistry* health,
    IncidentLog* incidents, OpsInfo info,
    obs::TimeSeriesStore* series = nullptr, bool dashboard = false,
    obs::ProvenanceLedger* provenance = nullptr);

// Upper bucket bounds (simulated seconds) for the
// incident_detection_latency_seconds histogram.
std::vector<double> DetectionLatencyBounds();

}  // namespace ranomaly::core
