// The live operations layer behind `ranomaly serve` and `ranomaly
// peers`: tick-based replay of an event stream through the analysis
// pipeline, an append-only incident log with monotonic sequence numbers
// (the `/incidents?since=` resumption contract), a per-peer health
// scoreboard, and the HTTP handler that routes the operations endpoints
// (/metrics, /varz, /healthz, /readyz, /incidents).
//
// Determinism: every detection-latency input is *simulated* time — the
// ingest tick is the (deterministic) batch boundary an event entered the
// pipeline at, AnalyzeWindow is bit-identical for any thread count, and
// incidents dedup on their stem key — so the
// incident_detection_latency_seconds buckets are bit-identical across
// RANOMALY_THREADS settings.  Wall time appears only in pacing
// (--pace-ms) and heartbeat metering, never in what gets detected or
// when (DESIGN.md determinism rule).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "collector/event_stream.h"
#include "core/incident.h"
#include "core/pipeline.h"
#include "obs/health.h"
#include "obs/http_server.h"
#include "obs/metrics.h"
#include "util/time.h"

namespace ranomaly::core {

// Append-only incident history with monotonic sequence numbers starting
// at 1.  `Since(n)` returns entries with seq > n, so a client that
// remembers the `next_since` from its last poll resumes without loss or
// duplication.  Mutex-guarded: the replay thread appends while the HTTP
// thread reads.
class IncidentLog {
 public:
  struct Entry {
    std::uint64_t seq = 0;
    Incident incident;
  };

  // Returns the assigned sequence number.
  std::uint64_t Append(Incident incident);

  // Entries with seq > `since` (0 = everything), in sequence order.
  std::vector<Entry> Since(std::uint64_t since) const;

  std::size_t size() const;

  // {"incidents":[...],"next_since":N} for entries with seq > since.
  // next_since is the latest seq overall (so an empty poll still
  // advances the client's cursor correctly: it stays put).
  std::string ToJson(std::uint64_t since) const;

 private:
  mutable std::mutex mu_;
  std::vector<Entry> entries_;
};

// Per-peer feed scoreboard derived from the event stream's markers —
// the same facts the live health model exposes, computed once and worn
// by two frontends (`ranomaly peers` table, serve health components).
class PeerBoard {
 public:
  struct Row {
    bgp::Ipv4Addr peer;
    bool degraded = false;       // inside an unclosed feed gap
    std::uint64_t announces = 0;
    std::uint64_t withdraws = 0;
    std::uint64_t reconnects = 0;   // closed gaps (kResync markers)
    std::uint64_t gaps = 0;         // kFeedGap markers
    std::uint64_t quarantined = 0;  // corrupt frames (0 for file streams)
    util::SimTime first_seen = 0;
    util::SimTime last_seen = 0;
    util::SimTime last_gap = -1;    // time of the latest kFeedGap, -1 none
    double uptime_sec = 0.0;        // observed span minus in-gap time
  };

  void Observe(const bgp::Event& event);
  // Closes the books at `end` (open gaps accrue degraded time up to it).
  void Finish(util::SimTime end);

  // Rows sorted by peer address.
  std::vector<Row> Rows() const;

 private:
  struct State {
    Row row;
    util::SimTime gap_open = -1;   // begin of the currently open gap
    double gap_sec = 0.0;          // accumulated in-gap seconds
  };
  std::vector<std::pair<std::uint32_t, State>> peers_;  // keyed by addr
  State& Of(bgp::Ipv4Addr peer);
};

// Renders the `ranomaly peers` scoreboard table.
std::string FormatPeerTable(const std::vector<PeerBoard::Row>& rows);

struct LiveOptions {
  PipelineOptions pipeline;
  // Analysis cadence: events are ingested in [tick] batches; each batch
  // end is the ingest tick stamped on its events.
  util::SimDuration tick = 10 * util::kSecond;
  // Sliding analysis window handed to the pipeline each tick.
  util::SimDuration window = 5 * util::kMinute;
  // Detection-latency SLO target (simulated seconds, burst -> surfaced).
  double slo_target_sec = 30.0;
  // Mark the replay heartbeat DEGRADED if a tick stalls past this many
  // wall seconds; 0 disables.
  double heartbeat_deadline_sec = 0.0;
};

struct LiveStats {
  std::uint64_t ticks = 0;
  std::uint64_t events_ingested = 0;
  std::uint64_t incidents = 0;
  std::uint64_t incidents_within_slo = 0;
  util::SimTime clock = 0;  // replay position (end of last tick)
};

// Drives the tick replay.  Health/incident sinks are borrowed, not
// owned; pass nullptr to skip either.  Metrics always record to
// MetricsRegistry::Global().
class LiveRunner {
 public:
  LiveRunner(LiveOptions options, obs::HealthRegistry* health,
             IncidentLog* incidents);

  // Replays `stream` tick by tick; checks `keep_going` (when non-null)
  // before each tick and stops early when it reads false.  `on_tick`
  // (when set) runs after each tick with the running stats — the serve
  // CLI paces and prints there.  Returns the final stats.
  LiveStats Run(const collector::EventStream& stream,
                const std::atomic<bool>* keep_going = nullptr,
                const std::function<void(const LiveStats&)>& on_tick = {});

 private:
  LiveOptions options_;
  Pipeline pipeline_;
  obs::HealthRegistry* health_;
  IncidentLog* incidents_;
};

// Static facts the /varz payload reports alongside the metric snapshot.
struct OpsInfo {
  std::string stream_path;
  std::size_t threads = 0;
  double slo_target_sec = 0.0;
  double tick_sec = 0.0;
  double window_sec = 0.0;
};

// Routes the operations endpoints.  All sinks are borrowed and must
// outlive the returned handler:
//   GET /metrics            Prometheus exposition (text/plain; version=0.0.4)
//   GET /varz               full JSON state dump
//   GET /healthz            liveness: 200 while the process can answer
//   GET /readyz             readiness: HealthRegistry worst-of; 503 names
//                           the offending components
//   GET /incidents?since=N  incident log entries with seq > N (400 on a
//                           malformed `since`)
// Anything else is 404.
obs::HttpServer::Handler MakeOpsHandler(obs::MetricsRegistry* metrics,
                                        obs::HealthRegistry* health,
                                        IncidentLog* incidents,
                                        OpsInfo info);

// Upper bucket bounds (simulated seconds) for the
// incident_detection_latency_seconds histogram.
std::vector<double> DetectionLatencyBounds();

}  // namespace ranomaly::core
