#include "core/live_checkpoint.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <sstream>

#include "collector/binary_io.h"
#include "stemming/stemming.h"
#include "util/strings.h"

namespace ranomaly::core {
namespace {

namespace io = collector::io;

constexpr std::uint8_t kSectionLayoutVersion = 1;
// Operator strings (stem labels, summaries) are short; anything past
// this bound in a CRC-clean file is a crafted or corrupt section.
constexpr std::uint32_t kMaxString = 1 << 16;
constexpr std::uint64_t kMaxEntries = 1u << 24;

void PutF64(io::StringSink& os, double v) {
  io::Put<std::uint64_t>(os, std::bit_cast<std::uint64_t>(v));
}

bool GetF64(io::Reader& r, double& v) {
  std::uint64_t u = 0;
  if (!r.Get(u)) return false;
  v = std::bit_cast<double>(u);
  return true;
}

void PutString(io::StringSink& os, const std::string& s) {
  io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(s.size()));
  os.write(s.data(), static_cast<std::streamsize>(s.size()));
}

bool GetString(io::Reader& r, std::string& s) {
  std::uint32_t size = 0;
  if (!r.Get(size) || size > kMaxString) return false;
  s.resize(size);
  return size == 0 || r.GetRaw(s.data(), size);
}

// ---------------------------------------------------------------------------
// Per-section encoders.  Every section leads with its layout version.

std::string EncodeLive(const LiveCheckpointState& s) {
  std::string out;
  io::StringSink os(out);
  io::Put<std::uint8_t>(os, kSectionLayoutVersion);
  io::Put<std::int64_t>(os, s.t0);
  io::Put<std::uint64_t>(os, s.next_event);
  io::Put<std::uint64_t>(os, s.stats.ticks);
  io::Put<std::uint64_t>(os, s.stats.events_ingested);
  io::Put<std::uint64_t>(os, s.stats.incidents);
  io::Put<std::uint64_t>(os, s.stats.incidents_within_slo);
  io::Put<std::int64_t>(os, s.stats.clock);
  io::Put<std::uint64_t>(os, s.stats.events_shed);
  io::Put<std::uint64_t>(os, s.stats.shed_transitions);
  io::Put<std::uint64_t>(os, s.stats.checkpoint_writes);
  io::Put<std::uint64_t>(os, s.stats.checkpoint_failures);
  return out;
}

std::string EncodeShed(const LiveCheckpointState& s) {
  std::string out;
  io::StringSink os(out);
  io::Put<std::uint8_t>(os, kSectionLayoutVersion);
  io::Put<std::uint8_t>(os, static_cast<std::uint8_t>(s.shed_level));
  io::Put<std::uint64_t>(os, s.calm_ticks);
  io::Put<std::uint64_t>(os, s.arrival_index);
  io::Put<std::uint8_t>(os, s.tracer_suspended ? 1 : 0);
  io::Put<std::uint8_t>(os, s.tracer_was_enabled ? 1 : 0);
  io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(s.shed_windows.size()));
  for (const ShedWindow& w : s.shed_windows) {
    io::Put<std::int64_t>(os, w.begin);
    io::Put<std::int64_t>(os, w.end);
    io::Put<std::uint8_t>(os, w.closed ? 1 : 0);
  }
  return out;
}

std::string EncodeStem(const LiveCheckpointState& s) {
  std::string out;
  io::StringSink os(out);
  io::Put<std::uint8_t>(os, kSectionLayoutVersion);
  io::Put<std::uint64_t>(os, s.seen_stems.size());
  for (const auto& [a, b] : s.seen_stems) {
    io::Put<std::uint64_t>(os, a);
    io::Put<std::uint64_t>(os, b);
  }
  return out;
}

std::string EncodeGaps(const LiveCheckpointState& s) {
  std::string out;
  io::StringSink os(out);
  io::Put<std::uint8_t>(os, kSectionLayoutVersion);
  io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(s.gaps.size()));
  for (const LiveGap& g : s.gaps) {
    io::Put<std::uint32_t>(os, g.peer.value());
    io::Put<std::int64_t>(os, g.begin);
    io::Put<std::int64_t>(os, g.end);
    io::Put<std::uint8_t>(os, g.closed ? 1 : 0);
  }
  return out;
}

std::string EncodePeers(const LiveCheckpointState& s) {
  std::string out;
  io::StringSink os(out);
  io::Put<std::uint8_t>(os, kSectionLayoutVersion);
  io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(s.peers.size()));
  for (const PeerBoard::Persisted& p : s.peers) {
    io::Put<std::uint32_t>(os, p.row.peer.value());
    io::Put<std::uint8_t>(os, p.row.degraded ? 1 : 0);
    io::Put<std::uint64_t>(os, p.row.announces);
    io::Put<std::uint64_t>(os, p.row.withdraws);
    io::Put<std::uint64_t>(os, p.row.reconnects);
    io::Put<std::uint64_t>(os, p.row.gaps);
    io::Put<std::uint64_t>(os, p.row.quarantined);
    io::Put<std::int64_t>(os, p.row.first_seen);
    io::Put<std::int64_t>(os, p.row.last_seen);
    io::Put<std::int64_t>(os, p.row.last_gap);
    io::Put<std::int64_t>(os, p.gap_open);
    PutF64(os, p.gap_sec);
  }
  return out;
}

// Admission classes pack four to a byte, entry i in bits (i%4)*2..+1 of
// byte i/4; padding bits of a partial final byte are zero.
std::string EncodeFlow(const LiveCheckpointState& s) {
  std::string out;
  out.reserve(32 + s.flow.size() / 4);
  io::StringSink os(out);
  io::Put<std::uint8_t>(os, kSectionLayoutVersion);
  io::Put<std::uint64_t>(os, s.flow_start);
  io::Put<std::uint64_t>(os, s.flow.size());
  std::uint8_t packed = 0;
  for (std::size_t i = 0; i < s.flow.size(); ++i) {
    packed |= static_cast<std::uint8_t>(s.flow[i] << ((i & 3) * 2));
    if ((i & 3) == 3) {
      io::Put<std::uint8_t>(os, packed);
      packed = 0;
    }
  }
  if ((s.flow.size() & 3) != 0) io::Put<std::uint8_t>(os, packed);
  return out;
}

std::string EncodeIncidents(const std::vector<IncidentLog::Entry>& incidents) {
  std::string out;
  io::StringSink os(out);
  io::Put<std::uint8_t>(os, kSectionLayoutVersion);
  io::Put<std::uint64_t>(os, incidents.size());
  for (const IncidentLog::Entry& e : incidents) {
    const Incident& inc = e.incident;
    io::Put<std::uint64_t>(os, e.seq);
    io::Put<std::uint8_t>(os, static_cast<std::uint8_t>(inc.kind));
    io::Put<std::int64_t>(os, inc.begin);
    io::Put<std::int64_t>(os, inc.end);
    io::Put<std::uint64_t>(os, inc.event_count);
    PutF64(os, inc.event_fraction);
    io::Put<std::uint64_t>(os, inc.prefix_count);
    io::Put<std::uint64_t>(os, inc.stem_key.first);
    io::Put<std::uint64_t>(os, inc.stem_key.second);
    PutString(os, inc.stem_label);
    PutString(os, inc.top_sequence);
    PutString(os, inc.summary);
    io::Put<std::uint8_t>(os, inc.feed_degraded ? 1 : 0);
    io::Put<std::uint8_t>(os, inc.load_shed ? 1 : 0);
    io::Put<std::int64_t>(os, inc.ingest_tick);
    io::Put<std::int64_t>(os, inc.detected_at);
    PutF64(os, inc.detection_latency_sec);
  }
  return out;
}

std::string EncodeSloHistogram(const LiveCheckpointState& s) {
  std::string out;
  io::StringSink os(out);
  io::Put<std::uint8_t>(os, kSectionLayoutVersion);
  io::Put<std::uint32_t>(os,
                         static_cast<std::uint32_t>(s.latency_counts.size()));
  for (const std::uint64_t c : s.latency_counts) {
    io::Put<std::uint64_t>(os, c);
  }
  return out;
}

std::string EncodeSeriesStore(const LiveCheckpointState& s) {
  const obs::TimeSeriesStore::Persisted& st = s.series_store;
  std::string out;
  io::StringSink os(out);
  io::Put<std::uint8_t>(os, kSectionLayoutVersion);
  io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(st.tiers.size()));
  for (const obs::TierSpec& tier : st.tiers) {
    io::Put<std::int64_t>(os, tier.resolution_us);
    io::Put<std::uint32_t>(os, tier.capacity);
  }
  io::Put<std::int64_t>(os, st.last_sample);
  io::Put<std::uint64_t>(os, st.dropped_series);
  io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(st.series.size()));
  for (const obs::TimeSeriesStore::PersistedSeries& series : st.series) {
    PutString(os, series.name);
    io::Put<std::uint8_t>(os, series.kind);
    for (const std::vector<obs::SeriesPoint>& ring : series.tiers) {
      io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(ring.size()));
      for (const obs::SeriesPoint& p : ring) {
        io::Put<std::int64_t>(os, p.t);
        PutF64(os, p.value);
        PutF64(os, p.min);
        PutF64(os, p.max);
      }
    }
  }
  return out;
}

std::string EncodeProvenance(const LiveCheckpointState& s) {
  const obs::ProvenanceLedger::Persisted& st = s.provenance;
  std::string out;
  io::StringSink os(out);
  io::Put<std::uint8_t>(os, kSectionLayoutVersion);
  io::Put<std::uint32_t>(os, st.caps.max_incidents);
  io::Put<std::uint32_t>(os, st.caps.max_events);
  io::Put<std::uint32_t>(os, st.caps.max_classes);
  io::Put<std::uint64_t>(os, st.evicted);
  io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(st.records.size()));
  for (const obs::IncidentProvenance& r : st.records) {
    io::Put<std::uint64_t>(os, r.seq);
    io::Put<std::uint64_t>(os, r.stem_first);
    io::Put<std::uint64_t>(os, r.stem_second);
    PutString(os, r.stem);
    PutString(os, r.kind);
    io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(r.path.size()));
    for (const std::string& hop : r.path) PutString(os, hop);
    io::Put<std::uint64_t>(os, r.window_events);
    io::Put<std::uint64_t>(os, r.component_events);
    PutF64(os, r.component_weight);
    io::Put<std::uint64_t>(os, r.events_total);
    io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(r.events.size()));
    for (const obs::ProvenanceEvent& e : r.events) {
      io::Put<std::uint64_t>(os, e.stream_index);
      PutF64(os, e.time_sec);
      PutString(os, e.type);
      PutString(os, e.peer);
      PutString(os, e.prefix);
      io::Put<std::uint8_t>(os, e.admission);
    }
    io::Put<std::uint64_t>(os, r.classes_total);
    io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(r.classes.size()));
    for (const obs::ProvenanceClass& c : r.classes) {
      io::Put<std::uint32_t>(os, c.id);
      PutF64(os, c.weight);
      PutF64(os, c.score);
      PutString(os, c.sequence);
    }
    io::Put<std::uint32_t>(os, static_cast<std::uint32_t>(r.stages.size()));
    for (const obs::ProvenanceStage& stage : r.stages) {
      PutString(os, stage.stage);
      PutF64(os, stage.seconds);
    }
    io::Put<std::uint64_t>(os, r.trace_tick);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Per-section decoders.  Each returns an empty string on success or a
// human-readable reason; DecodeLiveState prefixes the section tag.

struct SectionReader {
  explicit SectionReader(const std::string& bytes)
      : stream(bytes), reader(stream) {}
  std::istringstream stream;
  io::Reader reader;

  bool AtEnd() {
    return stream.peek() == std::istringstream::traits_type::eof();
  }
};

std::string CheckLayout(SectionReader& sr) {
  std::uint8_t layout = 0;
  if (!sr.reader.Get(layout)) return "truncated layout version";
  if (layout != kSectionLayoutVersion) {
    return util::StrPrintf("unsupported layout version %u", layout);
  }
  return "";
}

std::string DecodeLive(const std::string& bytes, LiveCheckpointState& s) {
  SectionReader sr(bytes);
  if (auto err = CheckLayout(sr); !err.empty()) return err;
  std::int64_t t0 = 0, clock = 0;
  if (!sr.reader.Get(t0) || !sr.reader.Get(s.next_event) ||
      !sr.reader.Get(s.stats.ticks) || !sr.reader.Get(s.stats.events_ingested) ||
      !sr.reader.Get(s.stats.incidents) ||
      !sr.reader.Get(s.stats.incidents_within_slo) || !sr.reader.Get(clock) ||
      !sr.reader.Get(s.stats.events_shed) ||
      !sr.reader.Get(s.stats.shed_transitions) ||
      !sr.reader.Get(s.stats.checkpoint_writes) ||
      !sr.reader.Get(s.stats.checkpoint_failures)) {
    return "truncated";
  }
  s.t0 = t0;
  s.stats.clock = clock;
  if (!sr.AtEnd()) return "trailing bytes";
  if (s.stats.clock < s.t0) return "clock precedes t0";
  if (s.stats.incidents_within_slo > s.stats.incidents) {
    return "incidents_within_slo exceeds incidents";
  }
  return "";
}

std::string DecodeShed(const std::string& bytes, LiveCheckpointState& s) {
  SectionReader sr(bytes);
  if (auto err = CheckLayout(sr); !err.empty()) return err;
  std::uint8_t level = 0, suspended = 0, was_enabled = 0;
  std::uint32_t count = 0;
  if (!sr.reader.Get(level) || !sr.reader.Get(s.calm_ticks) ||
      !sr.reader.Get(s.arrival_index) || !sr.reader.Get(suspended) ||
      !sr.reader.Get(was_enabled) || !sr.reader.Get(count)) {
    return "truncated";
  }
  if (level > 3) return util::StrPrintf("shed level %u out of range", level);
  if (suspended > 1 || was_enabled > 1) return "bad boolean";
  if (count > kMaxEntries) return "implausible shed window count";
  s.shed_level = level;
  s.tracer_suspended = suspended != 0;
  s.tracer_was_enabled = was_enabled != 0;
  s.shed_windows.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    ShedWindow w;
    std::int64_t begin = 0, end = 0;
    std::uint8_t closed = 0;
    if (!sr.reader.Get(begin) || !sr.reader.Get(end) ||
        !sr.reader.Get(closed)) {
      return util::StrPrintf("truncated at window %u", i);
    }
    if (closed > 1) return "bad boolean";
    if (end < begin) return util::StrPrintf("window %u ends before begin", i);
    w.begin = begin;
    w.end = end;
    w.closed = closed != 0;
    s.shed_windows.push_back(w);
  }
  if (!sr.AtEnd()) return "trailing bytes";
  return "";
}

std::string DecodeStem(const std::string& bytes, LiveCheckpointState& s) {
  SectionReader sr(bytes);
  if (auto err = CheckLayout(sr); !err.empty()) return err;
  std::uint64_t count = 0;
  if (!sr.reader.Get(count)) return "truncated";
  if (count > kMaxEntries) return "implausible stem count";
  s.seen_stems.clear();
  std::pair<std::uint64_t, std::uint64_t> prev{0, 0};
  for (std::uint64_t i = 0; i < count; ++i) {
    std::uint64_t a = 0, b = 0;
    if (!sr.reader.Get(a) || !sr.reader.Get(b)) {
      return util::StrPrintf("truncated at stem %llu",
                             static_cast<unsigned long long>(i));
    }
    if (!stemming::IsValidRawSymbol(a) || !stemming::IsValidRawSymbol(b)) {
      return util::StrPrintf("invalid raw symbol at stem %llu",
                             static_cast<unsigned long long>(i));
    }
    const std::pair<std::uint64_t, std::uint64_t> key{a, b};
    if (i > 0 && !(prev < key)) {
      return util::StrPrintf("stems not strictly increasing at %llu",
                             static_cast<unsigned long long>(i));
    }
    prev = key;
    s.seen_stems.push_back(key);
  }
  if (!sr.AtEnd()) return "trailing bytes";
  return "";
}

std::string DecodeGaps(const std::string& bytes, LiveCheckpointState& s) {
  SectionReader sr(bytes);
  if (auto err = CheckLayout(sr); !err.empty()) return err;
  std::uint32_t count = 0;
  if (!sr.reader.Get(count)) return "truncated";
  if (count > kMaxEntries) return "implausible gap count";
  s.gaps.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    LiveGap g;
    std::uint32_t peer = 0;
    std::int64_t begin = 0, end = 0;
    std::uint8_t closed = 0;
    if (!sr.reader.Get(peer) || !sr.reader.Get(begin) || !sr.reader.Get(end) ||
        !sr.reader.Get(closed)) {
      return util::StrPrintf("truncated at gap %u", i);
    }
    if (closed > 1) return "bad boolean";
    if (end < begin) return util::StrPrintf("gap %u ends before begin", i);
    g.peer = bgp::Ipv4Addr(peer);
    g.begin = begin;
    g.end = end;
    g.closed = closed != 0;
    s.gaps.push_back(g);
  }
  if (!sr.AtEnd()) return "trailing bytes";
  return "";
}

std::string DecodePeers(const std::string& bytes, LiveCheckpointState& s) {
  SectionReader sr(bytes);
  if (auto err = CheckLayout(sr); !err.empty()) return err;
  std::uint32_t count = 0;
  if (!sr.reader.Get(count)) return "truncated";
  if (count > kMaxEntries) return "implausible peer count";
  s.peers.clear();
  for (std::uint32_t i = 0; i < count; ++i) {
    PeerBoard::Persisted p;
    std::uint32_t peer = 0;
    std::uint8_t degraded = 0;
    std::int64_t first_seen = 0, last_seen = 0, last_gap = 0, gap_open = 0;
    if (!sr.reader.Get(peer) || !sr.reader.Get(degraded) ||
        !sr.reader.Get(p.row.announces) || !sr.reader.Get(p.row.withdraws) ||
        !sr.reader.Get(p.row.reconnects) || !sr.reader.Get(p.row.gaps) ||
        !sr.reader.Get(p.row.quarantined) || !sr.reader.Get(first_seen) ||
        !sr.reader.Get(last_seen) || !sr.reader.Get(last_gap) ||
        !sr.reader.Get(gap_open) || !GetF64(sr.reader, p.gap_sec)) {
      return util::StrPrintf("truncated at peer %u", i);
    }
    if (degraded > 1) return "bad boolean";
    if (!std::isfinite(p.gap_sec) || p.gap_sec < 0) {
      return util::StrPrintf("peer %u gap_sec not finite", i);
    }
    // A degraded row must carry its open-gap begin and vice versa.
    if ((degraded != 0) != (gap_open >= 0)) {
      return util::StrPrintf("peer %u degraded/gap_open mismatch", i);
    }
    p.row.peer = bgp::Ipv4Addr(peer);
    p.row.degraded = degraded != 0;
    p.row.first_seen = first_seen;
    p.row.last_seen = last_seen;
    p.row.last_gap = last_gap;
    p.gap_open = gap_open;
    s.peers.push_back(std::move(p));
  }
  if (!sr.AtEnd()) return "trailing bytes";
  return "";
}

std::string DecodeFlow(const std::string& bytes, std::uint64_t next_event,
                       LiveCheckpointState& s) {
  SectionReader sr(bytes);
  if (auto err = CheckLayout(sr); !err.empty()) return err;
  std::uint64_t count = 0;
  if (!sr.reader.Get(s.flow_start) || !sr.reader.Get(count)) {
    return "truncated";
  }
  if (count > kMaxEntries) return "implausible in-flight count";
  // The range must butt up against the LIVE cursor: every event before
  // flow_start is settled, every event from next_event on is unread.
  if (s.flow_start > next_event || next_event - s.flow_start != count) {
    return "range disagrees with the LIVE cursor";
  }
  s.flow.assign(static_cast<std::size_t>(count), 0);
  bool queue_seen = false;
  std::uint8_t packed = 0;
  for (std::uint64_t i = 0; i < count; ++i) {
    if ((i & 3) == 0 && !sr.reader.Get(packed)) return "truncated";
    const std::uint8_t cls = (packed >> ((i & 3) * 2)) & 3;
    if (cls > 2) {
      return util::StrPrintf("bad admission class at entry %llu",
                             static_cast<unsigned long long>(i));
    }
    // Admission is FIFO: everything still in the window was consumed
    // before anything still queued, so classes never go 2 -> 1.
    if (cls == 2) {
      queue_seen = true;
    } else if (cls == 1 && queue_seen) {
      return util::StrPrintf("window entry %llu after a queue entry",
                             static_cast<unsigned long long>(i));
    }
    s.flow[static_cast<std::size_t>(i)] = cls;
  }
  if ((count & 3) != 0 && (packed >> ((count & 3) * 2)) != 0) {
    return "nonzero padding bits";
  }
  if (!sr.AtEnd()) return "trailing bytes";
  return "";
}

std::string DecodeIncidents(const std::string& bytes, util::SimTime clock,
                            LiveCheckpointState& s) {
  SectionReader sr(bytes);
  if (auto err = CheckLayout(sr); !err.empty()) return err;
  std::uint64_t count = 0;
  if (!sr.reader.Get(count)) return "truncated";
  if (count > kMaxEntries) return "implausible incident count";
  s.incidents.clear();
  for (std::uint64_t i = 0; i < count; ++i) {
    IncidentLog::Entry e;
    Incident& inc = e.incident;
    std::uint8_t kind = 0, feed_degraded = 0, load_shed = 0;
    std::int64_t begin = 0, end = 0, ingest_tick = 0, detected_at = 0;
    std::uint64_t event_count = 0, prefix_count = 0;
    if (!sr.reader.Get(e.seq) || !sr.reader.Get(kind) ||
        !sr.reader.Get(begin) || !sr.reader.Get(end) ||
        !sr.reader.Get(event_count) || !GetF64(sr.reader, inc.event_fraction) ||
        !sr.reader.Get(prefix_count) || !sr.reader.Get(inc.stem_key.first) ||
        !sr.reader.Get(inc.stem_key.second) ||
        !GetString(sr.reader, inc.stem_label) ||
        !GetString(sr.reader, inc.top_sequence) ||
        !GetString(sr.reader, inc.summary) || !sr.reader.Get(feed_degraded) ||
        !sr.reader.Get(load_shed) || !sr.reader.Get(ingest_tick) ||
        !sr.reader.Get(detected_at) ||
        !GetF64(sr.reader, inc.detection_latency_sec)) {
      return util::StrPrintf("truncated at entry %llu",
                             static_cast<unsigned long long>(i));
    }
    if (e.seq != i + 1) {
      return util::StrPrintf("non-contiguous seq at entry %llu",
                             static_cast<unsigned long long>(i));
    }
    if (kind > static_cast<std::uint8_t>(IncidentKind::kUnknown)) {
      return util::StrPrintf("bad incident kind at entry %llu",
                             static_cast<unsigned long long>(i));
    }
    if (feed_degraded > 1 || load_shed > 1) return "bad boolean";
    if (end < begin || detected_at > clock ||
        !std::isfinite(inc.detection_latency_sec) ||
        inc.detection_latency_sec < 0 || !std::isfinite(inc.event_fraction)) {
      return util::StrPrintf("implausible time fields at entry %llu",
                             static_cast<unsigned long long>(i));
    }
    if (!stemming::IsValidRawSymbol(inc.stem_key.first) ||
        !stemming::IsValidRawSymbol(inc.stem_key.second)) {
      return util::StrPrintf("invalid stem symbol at entry %llu",
                             static_cast<unsigned long long>(i));
    }
    inc.kind = static_cast<IncidentKind>(kind);
    inc.begin = begin;
    inc.end = end;
    inc.event_count = static_cast<std::size_t>(event_count);
    inc.prefix_count = static_cast<std::size_t>(prefix_count);
    inc.feed_degraded = feed_degraded != 0;
    inc.load_shed = load_shed != 0;
    inc.ingest_tick = ingest_tick;
    inc.detected_at = detected_at;
    s.incidents.push_back(std::move(e));
  }
  if (!sr.AtEnd()) return "trailing bytes";
  return "";
}

std::string DecodeSloHistogram(const std::string& bytes,
                               LiveCheckpointState& s) {
  SectionReader sr(bytes);
  if (auto err = CheckLayout(sr); !err.empty()) return err;
  std::uint32_t count = 0;
  if (!sr.reader.Get(count)) return "truncated";
  const std::size_t want = DetectionLatencyBounds().size() + 1;
  if (count != want) {
    return util::StrPrintf("bucket count %u != %zu", count, want);
  }
  s.latency_counts.assign(count, 0);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (!sr.reader.Get(s.latency_counts[i])) return "truncated";
  }
  if (!sr.AtEnd()) return "trailing bytes";
  return "";
}

std::string DecodeSeriesStore(const std::string& bytes, util::SimTime clock,
                              LiveCheckpointState& s) {
  SectionReader sr(bytes);
  if (auto err = CheckLayout(sr); !err.empty()) return err;
  obs::TimeSeriesStore::Persisted st;
  std::uint32_t tier_count = 0;
  if (!sr.reader.Get(tier_count)) return "truncated";
  if (tier_count > 16) return "implausible tier count";
  st.tiers.resize(tier_count);
  for (std::uint32_t i = 0; i < tier_count; ++i) {
    if (!sr.reader.Get(st.tiers[i].resolution_us) ||
        !sr.reader.Get(st.tiers[i].capacity)) {
      return util::StrPrintf("truncated at tier %u", i);
    }
  }
  std::uint32_t series_count = 0;
  if (!sr.reader.Get(st.last_sample) || !sr.reader.Get(st.dropped_series) ||
      !sr.reader.Get(series_count)) {
    return "truncated";
  }
  if (series_count > kMaxEntries) return "implausible series count";
  st.series.resize(series_count);
  for (std::uint32_t i = 0; i < series_count; ++i) {
    obs::TimeSeriesStore::PersistedSeries& series = st.series[i];
    if (!GetString(sr.reader, series.name) || !sr.reader.Get(series.kind)) {
      return util::StrPrintf("truncated at series %u", i);
    }
    series.tiers.resize(tier_count);
    for (std::uint32_t tier = 0; tier < tier_count; ++tier) {
      std::uint32_t points = 0;
      if (!sr.reader.Get(points)) {
        return util::StrPrintf("truncated at series %u tier %u", i, tier);
      }
      if (points > st.tiers[tier].capacity) {
        return util::StrPrintf("series %u tier %u overfull", i, tier);
      }
      series.tiers[tier].resize(points);
      for (std::uint32_t p = 0; p < points; ++p) {
        obs::SeriesPoint& pt = series.tiers[tier][p];
        if (!sr.reader.Get(pt.t) || !GetF64(sr.reader, pt.value) ||
            !GetF64(sr.reader, pt.min) || !GetF64(sr.reader, pt.max)) {
          return util::StrPrintf("truncated at series %u tier %u point %u", i,
                                 tier, p);
        }
      }
    }
  }
  if (!sr.AtEnd()) return "trailing bytes";
  // Structural invariants (alignment, ordering, finiteness) live with
  // the store so the decoder and Restore can never disagree.
  if (auto err = obs::TimeSeriesStore::Validate(st); !err.empty()) return err;
  if (st.last_sample > clock) return "last sample after the tick boundary";
  s.series_store = std::move(st);
  return "";
}

std::string DecodeProvenance(const std::string& bytes,
                             LiveCheckpointState& s) {
  SectionReader sr(bytes);
  if (auto err = CheckLayout(sr); !err.empty()) return err;
  obs::ProvenanceLedger::Persisted st;
  std::uint32_t record_count = 0;
  if (!sr.reader.Get(st.caps.max_incidents) ||
      !sr.reader.Get(st.caps.max_events) ||
      !sr.reader.Get(st.caps.max_classes) || !sr.reader.Get(st.evicted) ||
      !sr.reader.Get(record_count)) {
    return "truncated";
  }
  if (record_count > kMaxEntries) return "implausible record count";
  st.records.resize(record_count);
  for (std::uint32_t i = 0; i < record_count; ++i) {
    obs::IncidentProvenance& r = st.records[i];
    std::uint32_t path_count = 0;
    if (!sr.reader.Get(r.seq) || !sr.reader.Get(r.stem_first) ||
        !sr.reader.Get(r.stem_second) || !GetString(sr.reader, r.stem) ||
        !GetString(sr.reader, r.kind) || !sr.reader.Get(path_count)) {
      return util::StrPrintf("truncated at record %u", i);
    }
    if (path_count > 64) {
      return util::StrPrintf("record %u: implausible path length", i);
    }
    r.path.resize(path_count);
    for (std::uint32_t p = 0; p < path_count; ++p) {
      if (!GetString(sr.reader, r.path[p])) {
        return util::StrPrintf("truncated at record %u path hop %u", i, p);
      }
    }
    std::uint32_t event_count = 0;
    if (!sr.reader.Get(r.window_events) || !sr.reader.Get(r.component_events) ||
        !GetF64(sr.reader, r.component_weight) ||
        !sr.reader.Get(r.events_total) || !sr.reader.Get(event_count)) {
      return util::StrPrintf("truncated at record %u", i);
    }
    if (event_count > obs::kMaxProvenanceEvents) {
      return util::StrPrintf("record %u: implausible event count", i);
    }
    r.events.resize(event_count);
    for (std::uint32_t e = 0; e < event_count; ++e) {
      obs::ProvenanceEvent& ev = r.events[e];
      if (!sr.reader.Get(ev.stream_index) || !GetF64(sr.reader, ev.time_sec) ||
          !GetString(sr.reader, ev.type) || !GetString(sr.reader, ev.peer) ||
          !GetString(sr.reader, ev.prefix) || !sr.reader.Get(ev.admission)) {
        return util::StrPrintf("truncated at record %u event %u", i, e);
      }
    }
    std::uint32_t class_count = 0;
    if (!sr.reader.Get(r.classes_total) || !sr.reader.Get(class_count)) {
      return util::StrPrintf("truncated at record %u", i);
    }
    if (class_count > obs::kMaxProvenanceClasses) {
      return util::StrPrintf("record %u: implausible class count", i);
    }
    r.classes.resize(class_count);
    for (std::uint32_t c = 0; c < class_count; ++c) {
      obs::ProvenanceClass& cls = r.classes[c];
      if (!sr.reader.Get(cls.id) || !GetF64(sr.reader, cls.weight) ||
          !GetF64(sr.reader, cls.score) || !GetString(sr.reader, cls.sequence)) {
        return util::StrPrintf("truncated at record %u class %u", i, c);
      }
    }
    std::uint32_t stage_count = 0;
    if (!sr.reader.Get(stage_count)) {
      return util::StrPrintf("truncated at record %u", i);
    }
    if (stage_count > 16) {
      return util::StrPrintf("record %u: implausible stage count", i);
    }
    r.stages.resize(stage_count);
    for (std::uint32_t g = 0; g < stage_count; ++g) {
      if (!GetString(sr.reader, r.stages[g].stage) ||
          !GetF64(sr.reader, r.stages[g].seconds)) {
        return util::StrPrintf("truncated at record %u stage %u", i, g);
      }
    }
    if (!sr.reader.Get(r.trace_tick)) {
      return util::StrPrintf("truncated at record %u", i);
    }
  }
  if (!sr.AtEnd()) return "trailing bytes";
  // Structural invariants (caps, contiguity, per-record bounds) live
  // with the ledger so the decoder and Restore can never disagree.
  if (auto err = obs::ProvenanceLedger::Validate(st); !err.empty()) return err;
  s.provenance = std::move(st);
  return "";
}

// Recomputes the latency bucket counts implied by the incident log; the
// SLOH section must agree exactly (redundancy turns a selectively
// corrupted section into a loud restore failure).
std::vector<std::uint64_t> CountsFromIncidents(
    const std::vector<IncidentLog::Entry>& incidents) {
  const std::vector<double> bounds = DetectionLatencyBounds();
  std::vector<std::uint64_t> counts(bounds.size() + 1, 0);
  for (const IncidentLog::Entry& e : incidents) {
    std::size_t bucket = bounds.size();  // overflow
    for (std::size_t b = 0; b < bounds.size(); ++b) {
      if (e.incident.detection_latency_sec <= bounds[b]) {
        bucket = b;
        break;
      }
    }
    ++counts[bucket];
  }
  return counts;
}

}  // namespace

void EncodeLiveState(const LiveCheckpointState& state,
                     collector::Checkpoint& checkpoint) {
  EncodeLiveState(state, state.incidents, checkpoint);
}

void EncodeLiveState(const LiveCheckpointState& state,
                     const std::vector<IncidentLog::Entry>& incidents,
                     collector::Checkpoint& checkpoint) {
  checkpoint.time = state.stats.clock;
  checkpoint.event_offset = state.next_event;
  checkpoint.sections.clear();
  checkpoint.sections.push_back({"LIVE", EncodeLive(state)});
  checkpoint.sections.push_back({"SHED", EncodeShed(state)});
  checkpoint.sections.push_back({"STEM", EncodeStem(state)});
  checkpoint.sections.push_back({"GAPS", EncodeGaps(state)});
  checkpoint.sections.push_back({"PEER", EncodePeers(state)});
  checkpoint.sections.push_back({"FLOW", EncodeFlow(state)});
  checkpoint.sections.push_back({"INCD", EncodeIncidents(incidents)});
  checkpoint.sections.push_back({"SLOH", EncodeSloHistogram(state)});
  checkpoint.sections.push_back({"SERS", EncodeSeriesStore(state)});
  checkpoint.sections.push_back({"PROV", EncodeProvenance(state)});
}

bool DecodeLiveState(const collector::Checkpoint& checkpoint,
                     LiveCheckpointState* state, std::string* error) {
  LiveCheckpointState out;
  const auto fail = [error](const char* tag, const std::string& why) {
    if (error != nullptr) {
      *error = util::StrPrintf("section %s: %s", tag, why.c_str());
    }
    return false;
  };
  const auto section = [&](const char* tag) -> const std::string* {
    const collector::Checkpoint::Section* s = checkpoint.FindSection(tag);
    return s == nullptr ? nullptr : &s->bytes;
  };

  // Every live section is required; a checkpoint missing one is either
  // collector-only (not a live checkpoint) or truncated by editing.
  // (Tags WIND and QUEU carried full in-flight event records in earlier
  // builds; they are retired and must never be reused for new layouts.)
  for (const char* tag : {"LIVE", "SHED", "STEM", "GAPS", "PEER", "FLOW",
                          "INCD", "SLOH", "SERS", "PROV"}) {
    if (section(tag) == nullptr) return fail(tag, "missing");
  }

  if (auto err = DecodeLive(*section("LIVE"), out); !err.empty()) {
    return fail("LIVE", err);
  }
  // The outer envelope duplicates the cursor; disagreement means the
  // sections do not belong to this snapshot.
  if (checkpoint.time != out.stats.clock ||
      checkpoint.event_offset != out.next_event) {
    return fail("LIVE", "cursor disagrees with the checkpoint envelope");
  }
  if (auto err = DecodeShed(*section("SHED"), out); !err.empty()) {
    return fail("SHED", err);
  }
  if (auto err = DecodeStem(*section("STEM"), out); !err.empty()) {
    return fail("STEM", err);
  }
  if (auto err = DecodeGaps(*section("GAPS"), out); !err.empty()) {
    return fail("GAPS", err);
  }
  if (auto err = DecodePeers(*section("PEER"), out); !err.empty()) {
    return fail("PEER", err);
  }
  if (auto err = DecodeFlow(*section("FLOW"), out.next_event, out);
      !err.empty()) {
    return fail("FLOW", err);
  }
  if (auto err = DecodeIncidents(*section("INCD"), out.stats.clock, out);
      !err.empty()) {
    return fail("INCD", err);
  }
  if (auto err = DecodeSloHistogram(*section("SLOH"), out); !err.empty()) {
    return fail("SLOH", err);
  }
  if (auto err = DecodeSeriesStore(*section("SERS"), out.stats.clock, out);
      !err.empty()) {
    return fail("SERS", err);
  }
  if (auto err = DecodeProvenance(*section("PROV"), out); !err.empty()) {
    return fail("PROV", err);
  }
  if (out.incidents.size() != out.stats.incidents) {
    return fail("INCD", "entry count disagrees with LIVE stats");
  }
  if (CountsFromIncidents(out.incidents) != out.latency_counts) {
    return fail("SLOH", "bucket counts disagree with the incident log");
  }
  // Incident-id linkage: with a ledger attached (nonzero caps), every
  // incident was attached exactly once, so the retained records must be
  // exactly the newest min(incidents, max_incidents) seqs and each must
  // agree with its INCD entry's stem key.  A tampered PROV section that
  // still parses fails loudly here.
  if (out.provenance.caps.max_incidents > 0) {
    if (out.provenance.evicted + out.provenance.records.size() !=
        out.incidents.size()) {
      return fail("PROV", "record + evicted count disagrees with the "
                          "incident log");
    }
    for (const obs::IncidentProvenance& r : out.provenance.records) {
      // Contiguity from evicted + 1 was already validated, so seq is in
      // range here; check the cross-section identity.
      const Incident& inc = out.incidents[r.seq - 1].incident;
      if (r.stem_first != inc.stem_key.first ||
          r.stem_second != inc.stem_key.second) {
        return fail("PROV",
                    util::StrPrintf("record seq %llu stem key disagrees "
                                    "with INCD",
                                    static_cast<unsigned long long>(r.seq)));
      }
    }
  }
  // Derived stats fields the sections imply rather than store.
  out.stats.shed_level = out.shed_level;
  out.stats.queue_depth = static_cast<std::size_t>(
      std::count(out.flow.begin(), out.flow.end(), std::uint8_t{2}));
  out.stats.restored = true;
  *state = std::move(out);
  return true;
}

}  // namespace ranomaly::core
