#include "core/monitor.h"

namespace ranomaly::core {

RealTimeMonitor::RealTimeMonitor(Options options)
    : options_(options), pipeline_(options.pipeline) {}

bool RealTimeMonitor::ShouldAlert(const Incident& incident) {
  // Flap-shaped incidents are identified by their dominant prefix: the
  // same persistent oscillation can surface under different stems in
  // different windows (depending on what churn its component absorbed),
  // and must still page only once per interval.
  std::string key;
  if (incident.kind == IncidentKind::kRouteFlap ||
      incident.kind == IncidentKind::kMedOscillation) {
    key = "flap:" + incident.evidence.dominant_prefix.ToString();
  } else {
    key = std::string(ToString(incident.kind)) + ":" + incident.stem_label;
  }
  const auto [it, inserted] = last_alert_by_stem_.try_emplace(key, incident.end);
  if (!inserted) {
    if (incident.end - it->second < options_.realert_interval) {
      ++alerts_suppressed_;
      return false;
    }
    it->second = incident.end;
  }
  ++alerts_raised_;
  return true;
}

std::vector<Incident> RealTimeMonitor::Poll(
    const collector::EventStream& stream) {
  ++polls_;
  std::vector<Incident> alerts;
  if (stream.size() < cursor_) {
    // The stream was replaced/rewound; resynchronize rather than crash.
    cursor_ = 0;
  }
  if (stream.empty()) return alerts;

  // Spike-timescale pass over the fresh events.
  const auto& events = stream.events();
  const std::span<const bgp::Event> fresh(events.data() + cursor_,
                                          events.size() - cursor_);
  cursor_ = events.size();
  for (Incident& incident : pipeline_.AnalyzeWindow(fresh)) {
    if (ShouldAlert(incident)) alerts.push_back(std::move(incident));
  }

  // Periodic long-window pass over recent history: the low-grade
  // persistent anomalies only accumulate enough correlation here.
  const util::SimTime now = stream.back().time;
  if (!long_pass_ran_ || now - last_long_pass_ >= options_.long_pass_every) {
    long_pass_ran_ = true;
    last_long_pass_ = now;
    const auto window = stream.Window(now - options_.long_window, now + 1);
    for (Incident& incident : pipeline_.AnalyzeWindow(window)) {
      if (ShouldAlert(incident)) alerts.push_back(std::move(incident));
    }
  }
  return alerts;
}

}  // namespace ranomaly::core
