// Origin-conflict (MOAS) detection — the paper's Section I "route
// hijacking" anomaly: a router announcing reachability for prefixes it
// does not own, black-holing their traffic.  The observable is a prefix
// whose routes suddenly carry a different (or additional) origin AS, or a
// more-specific announcement punching a hole in an existing allocation.
//
// The detector keeps, per prefix, the set of origin ASes seen with
// timestamps, and flags:
//   * kMoas       — a second origin appears for an established prefix;
//   * kSubMoas    — a new announcement is more specific than an
//                   established prefix and has a different origin.
// A baseline learning period avoids flagging genuinely multi-origin
// prefixes (legit MOAS, e.g. anycast) that are multi-origin from the
// start.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/prefix.h"
#include "util/time.h"

namespace ranomaly::core {

enum class OriginConflictKind : std::uint8_t {
  kMoas,     // same prefix, new origin AS
  kSubMoas,  // more-specific prefix, different origin AS
};

const char* ToString(OriginConflictKind kind);

struct OriginConflict {
  OriginConflictKind kind = OriginConflictKind::kMoas;
  util::SimTime time = 0;
  bgp::Prefix prefix;               // the offending announcement
  bgp::AsNumber new_origin = 0;     // who started announcing
  bgp::Prefix established_prefix;   // what it conflicts with
  std::set<bgp::AsNumber> established_origins;

  std::string ToString() const;
};

class MoasDetector {
 public:
  struct Options {
    // Origins observed within this long of a prefix's first sighting are
    // baseline (legit multi-origin), not conflicts.
    util::SimDuration baseline_period = 10 * util::kMinute;
    // Forget an origin not re-seen for this long (hijack ended / moved).
    util::SimDuration origin_ttl = 7 * util::kDay;
  };

  MoasDetector() : MoasDetector(Options{}) {}
  explicit MoasDetector(Options options);

  // Feeds one announcement; returns a conflict if this event creates one.
  std::optional<OriginConflict> OnAnnounce(util::SimTime time,
                                           const bgp::Prefix& prefix,
                                           const bgp::PathAttributes& attrs);

  // All conflicts raised so far.
  const std::vector<OriginConflict>& conflicts() const { return conflicts_; }

  // Origins currently established for a prefix (empty if unseen).
  std::set<bgp::AsNumber> OriginsOf(const bgp::Prefix& prefix) const;

  std::size_t TrackedPrefixes() const { return prefixes_.size(); }

 private:
  struct PrefixState {
    util::SimTime first_seen = 0;
    std::map<bgp::AsNumber, util::SimTime> origins;  // origin -> last seen
  };

  Options options_;
  // Ordered map so more-specific lookups can scan candidate supernets.
  std::map<bgp::Prefix, PrefixState> prefixes_;
  bgp::PrefixTrie<std::uint8_t> trie_;  // presence index for supernet walk
  std::vector<OriginConflict> conflicts_;
};

}  // namespace ranomaly::core
