#include "core/moas.h"

#include "util/strings.h"

namespace ranomaly::core {

const char* ToString(OriginConflictKind kind) {
  switch (kind) {
    case OriginConflictKind::kMoas: return "MOAS";
    case OriginConflictKind::kSubMoas: return "subMOAS";
  }
  return "?";
}

std::string OriginConflict::ToString() const {
  std::string origins;
  for (const bgp::AsNumber a : established_origins) {
    if (!origins.empty()) origins += ",";
    origins += "AS" + std::to_string(a);
  }
  return util::StrPrintf(
      "%s: %s announced by AS%u conflicts with %s (established origins: %s)",
      core::ToString(kind), prefix.ToString().c_str(), new_origin,
      established_prefix.ToString().c_str(), origins.c_str());
}

MoasDetector::MoasDetector(Options options) : options_(options) {}

std::set<bgp::AsNumber> MoasDetector::OriginsOf(
    const bgp::Prefix& prefix) const {
  std::set<bgp::AsNumber> out;
  const auto it = prefixes_.find(prefix);
  if (it == prefixes_.end()) return out;
  for (const auto& [origin, last_seen] : it->second.origins) {
    out.insert(origin);
  }
  return out;
}

std::optional<OriginConflict> MoasDetector::OnAnnounce(
    util::SimTime time, const bgp::Prefix& prefix,
    const bgp::PathAttributes& attrs) {
  const auto origin_opt = attrs.as_path.Origin();
  if (!origin_opt) return std::nullopt;  // locally originated at the peer
  const bgp::AsNumber origin = *origin_opt;

  const auto [it, inserted] = prefixes_.try_emplace(prefix);
  PrefixState& state = it->second;

  std::optional<OriginConflict> conflict;

  if (inserted) {
    state.first_seen = time;
    state.origins[origin] = time;
    trie_.Insert(prefix, 1);
    // A brand-new more-specific under an established allocation with a
    // foreign origin: subMOAS.
    for (int len = prefix.length() - 1; len >= 1; --len) {
      const bgp::Prefix supernet(prefix.addr(), static_cast<std::uint8_t>(len));
      const auto sup = prefixes_.find(supernet);
      if (sup == prefixes_.end()) continue;
      const PrefixState& sup_state = sup->second;
      if (time - sup_state.first_seen <= options_.baseline_period) continue;
      if (sup_state.origins.contains(origin)) continue;
      OriginConflict c;
      c.kind = OriginConflictKind::kSubMoas;
      c.time = time;
      c.prefix = prefix;
      c.new_origin = origin;
      c.established_prefix = supernet;
      for (const auto& [o, last] : sup_state.origins) {
        c.established_origins.insert(o);
      }
      conflict = std::move(c);
      break;  // report against the closest established supernet
    }
  } else {
    const bool known = state.origins.contains(origin);
    const bool established =
        time - state.first_seen > options_.baseline_period;
    // Judge against everything on record, then expire stale origins: a
    // takeover of a long-quiet prefix is still flagged once, after which
    // the new origin is the owner of record.
    if (!known && established && !state.origins.empty()) {
      OriginConflict c;
      c.kind = OriginConflictKind::kMoas;
      c.time = time;
      c.prefix = prefix;
      c.new_origin = origin;
      c.established_prefix = prefix;
      for (const auto& [o, last] : state.origins) {
        c.established_origins.insert(o);
      }
      conflict = std::move(c);
    }
    for (auto o = state.origins.begin(); o != state.origins.end();) {
      if (time - o->second > options_.origin_ttl) {
        o = state.origins.erase(o);
      } else {
        ++o;
      }
    }
    state.origins[origin] = time;
  }

  if (conflict) conflicts_.push_back(*conflict);
  return conflict;
}

}  // namespace ranomaly::core
