#include "traffic/traffic.h"

#include <algorithm>
#include <stdexcept>

namespace ranomaly::traffic {

FlowGenerator::FlowGenerator(std::vector<bgp::Prefix> prefixes,
                             Options options, std::uint64_t seed)
    : prefixes_(std::move(prefixes)),
      options_(options),
      rng_(seed),
      zipf_(prefixes_.empty() ? 1 : prefixes_.size(), options.zipf_alpha) {
  if (prefixes_.empty()) {
    throw std::invalid_argument("FlowGenerator: no prefixes");
  }
}

FlowRecord FlowGenerator::Next() {
  now_ += static_cast<util::SimDuration>(rng_.NextExponential(
      static_cast<double>(options_.mean_interarrival)));
  const std::size_t rank = zipf_.Sample(rng_);
  const bgp::Prefix& p = prefixes_[rank];
  // Random host inside the prefix.
  const std::uint32_t host_bits = 32 - p.length();
  const std::uint32_t offset =
      host_bits == 0
          ? 0
          : static_cast<std::uint32_t>(rng_.NextBelow(1ULL << host_bits));
  FlowRecord flow;
  flow.time = now_;
  flow.dst = bgp::Ipv4Addr(p.addr().value() | offset);
  flow.bytes = 1 + static_cast<std::uint64_t>(rng_.NextExponential(
                       static_cast<double>(options_.mean_flow_bytes)));
  return flow;
}

std::vector<FlowRecord> FlowGenerator::Generate(std::size_t n) {
  std::vector<FlowRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(Next());
  return out;
}

TrafficMatrix::TrafficMatrix(const std::vector<bgp::Prefix>& routing_prefixes) {
  volumes_.reserve(routing_prefixes.size());
  for (const bgp::Prefix& p : routing_prefixes) {
    if (trie_.Insert(p, volumes_.size())) {
      volumes_.emplace_back(p, 0);
    }
  }
}

bool TrafficMatrix::AddFlow(const FlowRecord& flow) {
  const auto match = trie_.Lookup(flow.dst);
  if (!match) {
    unmatched_bytes_ += flow.bytes;
    return false;
  }
  volumes_[*match->second].second += flow.bytes;
  total_bytes_ += flow.bytes;
  return true;
}

std::uint64_t TrafficMatrix::VolumeOf(const bgp::Prefix& prefix) const {
  const std::size_t* idx = trie_.Find(prefix);
  return idx == nullptr ? 0 : volumes_[*idx].second;
}

double TrafficMatrix::FractionOf(const bgp::Prefix& prefix) const {
  if (total_bytes_ == 0) return 0.0;
  return static_cast<double>(VolumeOf(prefix)) /
         static_cast<double>(total_bytes_);
}

std::vector<std::pair<bgp::Prefix, std::uint64_t>> TrafficMatrix::ByVolume()
    const {
  auto sorted = volumes_;
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  return sorted;
}

double TrafficMatrix::VolumeShareOfTopPrefixes(double prefix_fraction) const {
  if (total_bytes_ == 0 || volumes_.empty()) return 0.0;
  const auto sorted = ByVolume();
  const std::size_t n = std::max<std::size_t>(
      1, static_cast<std::size_t>(prefix_fraction *
                                  static_cast<double>(sorted.size())));
  std::uint64_t bytes = 0;
  for (std::size_t i = 0; i < n && i < sorted.size(); ++i) {
    bytes += sorted[i].second;
  }
  return static_cast<double>(bytes) / static_cast<double>(total_bytes_);
}

std::vector<bgp::Prefix> TrafficMatrix::Elephants(
    double volume_fraction) const {
  std::vector<bgp::Prefix> out;
  if (total_bytes_ == 0) return out;
  const auto sorted = ByVolume();
  const auto target = static_cast<double>(total_bytes_) * volume_fraction;
  double acc = 0.0;
  for (const auto& [prefix, bytes] : sorted) {
    if (acc >= target) break;
    out.push_back(prefix);
    acc += static_cast<double>(bytes);
  }
  return out;
}

double LoadBalanceReport::PrefixFractionA() const {
  const std::size_t total = prefixes_a + prefixes_b;
  return total == 0 ? 0.0
                    : static_cast<double>(prefixes_a) /
                          static_cast<double>(total);
}

double LoadBalanceReport::ByteFractionA() const {
  const std::uint64_t total = bytes_a + bytes_b;
  return total == 0 ? 0.0
                    : static_cast<double>(bytes_a) /
                          static_cast<double>(total);
}

LoadBalanceReport EvaluateSplit(const TrafficMatrix& matrix,
                                const std::vector<bgp::Prefix>& side_a,
                                const std::vector<bgp::Prefix>& side_b) {
  LoadBalanceReport report;
  report.prefixes_a = side_a.size();
  report.prefixes_b = side_b.size();
  for (const bgp::Prefix& p : side_a) report.bytes_a += matrix.VolumeOf(p);
  for (const bgp::Prefix& p : side_b) report.bytes_b += matrix.VolumeOf(p);
  return report;
}

BalancedSplit ComputeBalancedSplit(const TrafficMatrix& matrix,
                                   const std::vector<bgp::Prefix>& prefixes) {
  // Sort by measured volume, heaviest first (stable tiebreak by prefix so
  // the plan is deterministic).
  std::vector<std::pair<bgp::Prefix, std::uint64_t>> ranked;
  ranked.reserve(prefixes.size());
  for (const bgp::Prefix& p : prefixes) {
    ranked.emplace_back(p, matrix.VolumeOf(p));
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });

  BalancedSplit split;
  std::uint64_t bytes_a = 0;
  std::uint64_t bytes_b = 0;
  for (const auto& [prefix, bytes] : ranked) {
    if (bytes_a <= bytes_b) {
      split.side_a.push_back(prefix);
      bytes_a += bytes;
    } else {
      split.side_b.push_back(prefix);
      bytes_b += bytes;
    }
  }
  split.report = EvaluateSplit(matrix, split.side_a, split.side_b);
  return split;
}

}  // namespace ranomaly::traffic
