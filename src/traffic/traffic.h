// Traffic integration — paper Section III-D.2.
//
// Substitutes for Cisco NetFlow on the border interfaces: a synthetic
// flow generator whose per-prefix volume follows a Zipf law, reproducing
// the "elephants and mice" skew (a small share of prefixes carries most
// of the bytes).  The TrafficMatrix correlates flows with routing
// prefixes (longest-prefix match) and answers the questions the paper
// poses: how much traffic does each prefix carry, how unbalanced is a
// prefix split *in bytes* rather than prefix counts, and which prefixes
// are elephants.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bgp/prefix.h"
#include "util/rng.h"
#include "util/time.h"

namespace ranomaly::traffic {

struct FlowRecord {
  util::SimTime time = 0;
  bgp::Ipv4Addr dst;       // destination host address
  std::uint64_t bytes = 0;
};

class FlowGenerator {
 public:
  struct Options {
    double zipf_alpha = 1.1;       // skew; ~1.1 gives 10/90-style splits
    std::uint64_t mean_flow_bytes = 50'000;
    util::SimDuration mean_interarrival = 10 * util::kMillisecond;
  };

  FlowGenerator(std::vector<bgp::Prefix> prefixes, Options options,
                std::uint64_t seed);

  // Generates the next flow; simulated time advances by an exponential
  // inter-arrival.
  FlowRecord Next();

  // Generates `n` flows at once.
  std::vector<FlowRecord> Generate(std::size_t n);

  const std::vector<bgp::Prefix>& prefixes() const { return prefixes_; }

 private:
  std::vector<bgp::Prefix> prefixes_;
  Options options_;
  util::Rng rng_;
  util::ZipfSampler zipf_;
  util::SimTime now_ = 0;
};

// Per-prefix byte counters keyed by longest-prefix match over a routing
// table.
class TrafficMatrix {
 public:
  explicit TrafficMatrix(const std::vector<bgp::Prefix>& routing_prefixes);

  // Accounts one flow to its covering prefix; returns false (and counts
  // it as unmatched) when no routing prefix covers the destination.
  bool AddFlow(const FlowRecord& flow);

  std::uint64_t VolumeOf(const bgp::Prefix& prefix) const;
  double FractionOf(const bgp::Prefix& prefix) const;
  std::uint64_t TotalVolume() const { return total_bytes_; }
  std::uint64_t UnmatchedBytes() const { return unmatched_bytes_; }

  // Prefixes sorted by volume, heaviest first.
  std::vector<std::pair<bgp::Prefix, std::uint64_t>> ByVolume() const;

  // Fraction of total bytes carried by the heaviest `prefix_fraction` of
  // prefixes — the "10 % of prefixes carry 90 % of traffic" statistic.
  double VolumeShareOfTopPrefixes(double prefix_fraction) const;

  // Heaviest prefixes that together carry at least `volume_fraction` of
  // the bytes (the paper's elephants, e.g. 80 %).
  std::vector<bgp::Prefix> Elephants(double volume_fraction) const;

 private:
  bgp::PrefixTrie<std::size_t> trie_;  // prefix -> index into volumes_
  std::vector<std::pair<bgp::Prefix, std::uint64_t>> volumes_;
  std::uint64_t total_bytes_ = 0;
  std::uint64_t unmatched_bytes_ = 0;
};

// Evaluation of a two-way prefix split (the Berkeley rate-limiter load
// balance of Section IV-A): prefix-count balance vs byte balance.
struct LoadBalanceReport {
  std::size_t prefixes_a = 0;
  std::size_t prefixes_b = 0;
  std::uint64_t bytes_a = 0;
  std::uint64_t bytes_b = 0;

  double PrefixFractionA() const;
  double ByteFractionA() const;
};

LoadBalanceReport EvaluateSplit(const TrafficMatrix& matrix,
                                const std::vector<bgp::Prefix>& side_a,
                                const std::vector<bgp::Prefix>& side_b);

// The Section III-D.2 payoff: instead of Berkeley's trial-and-error
// ("adjust the prefix splits, wait, readjust"), compute a two-way prefix
// split balanced by measured *bytes*.  Greedy longest-processing-time
// partition: prefixes in descending volume order, each assigned to the
// lighter side.  Guaranteed within 4/3 of the optimal imbalance, and in
// practice near-perfect under elephant/mice skew.
struct BalancedSplit {
  std::vector<bgp::Prefix> side_a;
  std::vector<bgp::Prefix> side_b;
  LoadBalanceReport report;
};

BalancedSplit ComputeBalancedSplit(const TrafficMatrix& matrix,
                                   const std::vector<bgp::Prefix>& prefixes);

}  // namespace ranomaly::traffic
