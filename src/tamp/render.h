// Renderers for TAMP pictures and animation frames: SVG (self-contained)
// and DOT (for external graphviz).
//
// Visual conventions follow the paper (Section III-A): edge thickness is
// proportional to the number of prefixes currently carried; in animation
// frames black = unchanged, blue = losing prefixes, green = gaining,
// yellow = flapping too fast to animate; an edge that has lost prefixes
// drags a gray shadow as wide as the most prefixes it ever carried.  An
// animation clock and the selected edge's prefix-count plot render below
// the graph (Fig 3).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "tamp/layout.h"
#include "tamp/prune.h"
#include "util/time.h"

namespace ranomaly::tamp {

enum class EdgeColor : std::uint8_t {
  kBlack,   // not changing
  kBlue,    // losing prefixes
  kGreen,   // gaining prefixes
  kYellow,  // flapping too fast to animate
};

const char* ToSvgColor(EdgeColor color);

// Extra per-edge state for animation frames (parallel to
// PrunedGraph::edges; missing entries render as plain black).
struct EdgeDecoration {
  EdgeColor color = EdgeColor::kBlack;
  // Historical max prefix count => gray shadow width; 0 disables.
  std::size_t shadow_weight = 0;
};

struct RenderOptions {
  // Edge stroke width for an edge carrying 100 % of prefixes.
  double max_stroke = 14.0;
  double min_stroke = 1.0;
  bool show_percentages = true;
  std::string title;
};

// Static picture.
std::string RenderSvg(const PrunedGraph& graph, const Layout& layout,
                      const RenderOptions& options = {});

// The per-edge prefix-count plot shown beside the animation controls.
struct EdgePlot {
  std::string edge_label;
  std::vector<std::size_t> weights;  // one per frame, up to current frame
};

// Animation frame: picture + clock + decorations + optional plot.
std::string RenderAnimationFrameSvg(
    const PrunedGraph& graph, const Layout& layout,
    const std::vector<EdgeDecoration>& decorations, util::SimTime clock,
    const std::optional<EdgePlot>& plot, const RenderOptions& options = {});

// DOT output for graphviz `dot -Tsvg`.
std::string RenderDot(const PrunedGraph& graph,
                      const RenderOptions& options = {});

// A self-contained *animated* SVG (SMIL): each edge's stroke width and
// color are keyframed from its per-frame prefix-count series, replaying
// the whole incident in `play_seconds` on loop in any browser — the
// deliverable form of the paper's TAMP animations.  `series[i]` is the
// per-frame weight sequence of `graph.edges[i]` (all series must share
// one length = the frame count); edges with an empty series render
// statically.
std::string RenderAnimatedSvg(const PrunedGraph& graph, const Layout& layout,
                              const std::vector<std::vector<std::size_t>>& series,
                              double play_seconds = 30.0,
                              const RenderOptions& options = {});

}  // namespace ranomaly::tamp
