#include "tamp/layout.h"

#include <algorithm>
#include <cmath>

namespace ranomaly::tamp {
namespace {

// Estimated box size from the label length.
constexpr double kCharWidth = 7.5;
constexpr double kBoxPadding = 14.0;
constexpr double kBoxHeight = 26.0;

}  // namespace

Layout ComputeLayout(const PrunedGraph& graph, const LayoutOptions& options) {
  Layout layout;
  const std::size_t n = graph.nodes.size();
  layout.nodes.resize(n);
  if (n == 0) return layout;

  // Group nodes by depth layer.
  std::size_t max_depth = 0;
  for (const auto& node : graph.nodes) max_depth = std::max(max_depth, node.depth);
  std::vector<std::vector<std::size_t>> layers(max_depth + 1);
  for (std::size_t i = 0; i < n; ++i) {
    layers[graph.nodes[i].depth].push_back(i);
  }

  // Adjacency for barycenter sweeps.
  std::vector<std::vector<std::size_t>> preds(n);
  std::vector<std::vector<std::size_t>> succs(n);
  for (const auto& e : graph.edges) {
    preds[e.to].push_back(e.from);
    succs[e.from].push_back(e.to);
  }

  // slot[i]: vertical position index of node i within its layer.
  std::vector<double> slot(n, 0.0);
  for (auto& layer : layers) {
    for (std::size_t k = 0; k < layer.size(); ++k) {
      slot[layer[k]] = static_cast<double>(k);
    }
  }

  auto sweep = [&](bool downward) {
    const auto order_layer = [&](std::vector<std::size_t>& layer,
                                 const std::vector<std::vector<std::size_t>>& nbrs) {
      std::vector<std::pair<double, std::size_t>> keyed;
      keyed.reserve(layer.size());
      for (const std::size_t i : layer) {
        double sum = 0.0;
        if (nbrs[i].empty()) {
          sum = slot[i];  // keep isolated nodes where they are
        } else {
          for (const std::size_t j : nbrs[i]) sum += slot[j];
          sum /= static_cast<double>(nbrs[i].size());
        }
        keyed.emplace_back(sum, i);
      }
      std::stable_sort(keyed.begin(), keyed.end(),
                       [](const auto& a, const auto& b) { return a.first < b.first; });
      for (std::size_t k = 0; k < keyed.size(); ++k) {
        layer[k] = keyed[k].second;
        slot[keyed[k].second] = static_cast<double>(k);
      }
    };
    if (downward) {
      for (std::size_t d = 1; d < layers.size(); ++d) order_layer(layers[d], preds);
    } else {
      for (std::size_t d = layers.size(); d-- > 1;) order_layer(layers[d - 1], succs);
    }
  };

  for (int it = 0; it < options.barycenter_iterations; ++it) {
    sweep(/*downward=*/true);
    sweep(/*downward=*/false);
  }

  // Coordinate assignment: center each layer vertically.
  std::size_t tallest = 0;
  for (const auto& layer : layers) tallest = std::max(tallest, layer.size());
  const double total_height = static_cast<double>(tallest) * options.node_gap;

  for (std::size_t d = 0; d < layers.size(); ++d) {
    const auto& layer = layers[d];
    const double layer_height = static_cast<double>(layer.size()) * options.node_gap;
    const double y0 = (total_height - layer_height) / 2.0;
    for (std::size_t k = 0; k < layer.size(); ++k) {
      const std::size_t i = layer[k];
      auto& p = layout.nodes[i];
      p.width = kBoxPadding +
                kCharWidth * static_cast<double>(graph.nodes[i].name.size());
      p.height = kBoxHeight;
      p.x = options.margin + static_cast<double>(d) * options.layer_gap +
            p.width / 2.0;
      p.y = options.margin + y0 + (static_cast<double>(k) + 0.5) * options.node_gap;
    }
  }

  for (const auto& p : layout.nodes) {
    layout.width = std::max(layout.width, p.x + p.width / 2.0 + options.margin);
    layout.height = std::max(layout.height, p.y + p.height / 2.0 + options.margin);
  }
  return layout;
}

std::size_t CountCrossings(const PrunedGraph& graph, const Layout& layout) {
  // Two edges (a->b) and (c->d) between the same pair of layers cross iff
  // their endpoint orders invert.
  std::size_t crossings = 0;
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    for (std::size_t j = i + 1; j < graph.edges.size(); ++j) {
      const auto& e1 = graph.edges[i];
      const auto& e2 = graph.edges[j];
      if (graph.nodes[e1.from].depth != graph.nodes[e2.from].depth ||
          graph.nodes[e1.to].depth != graph.nodes[e2.to].depth) {
        continue;
      }
      const double a = layout.nodes[e1.from].y;
      const double b = layout.nodes[e1.to].y;
      const double c = layout.nodes[e2.from].y;
      const double d = layout.nodes[e2.to].y;
      if ((a - c) * (b - d) < 0) ++crossings;
    }
  }
  return crossings;
}

}  // namespace ranomaly::tamp
