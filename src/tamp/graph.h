// TAMP ("Threshold And Merge Prefixes") graph construction — paper
// Section III-A.
//
// From a set of RIB entries, TAMP forms a virtual tree per router: the
// root is the router (or the whole site), linked to each BGP nexthop of
// its routes; nexthops link to the first AS they service; ASes link along
// the AS path; leaf ASes link to the prefixes they advertise.  Trees from
// multiple routers merge into one graph whose edge weight is the number
// of *unique* prefixes carried on the edge (Fig 1: the combined
// NexthopA-AS1 edge weighs 4, not 6, because weights are set unions, not
// sums).
//
// The graph is fully incremental: AddRoute/RemoveRoute maintain per-edge
// prefix multisets, so the same structure backs both static pictures and
// the 25 fps animations.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/prefix.h"
#include "collector/collector.h"
#include "util/intern.h"

namespace ranomaly::tamp {

using PrefixId = std::uint32_t;

enum class NodeKind : std::uint8_t {
  kRoot = 0,
  kPeer = 1,     // a monitored edge router / route reflector
  kNexthop = 2,  // a BGP nexthop address
  kAs = 3,       // an autonomous system
  kPrefix = 4,   // a leaf prefix (optional, see Options)
};

const char* ToString(NodeKind kind);

struct NodeId {
  NodeKind kind = NodeKind::kRoot;
  std::uint64_t key = 0;  // 0 for root; IP for peer/nexthop; ASN; prefix id

  friend bool operator==(const NodeId&, const NodeId&) = default;
};

struct NodeIdHash {
  std::size_t operator()(const NodeId& n) const {
    return std::hash<std::uint64_t>{}(
        (n.key << 3) ^ static_cast<std::uint64_t>(n.kind) * 0x9e3779b97f4a7c15ULL);
  }
};

inline NodeId RootNode() { return NodeId{NodeKind::kRoot, 0}; }
inline NodeId PeerNode(bgp::Ipv4Addr a) {
  return NodeId{NodeKind::kPeer, a.value()};
}
inline NodeId NexthopNode(bgp::Ipv4Addr a) {
  return NodeId{NodeKind::kNexthop, a.value()};
}
inline NodeId AsNode(bgp::AsNumber asn) { return NodeId{NodeKind::kAs, asn}; }
inline NodeId PrefixNode(PrefixId id) { return NodeId{NodeKind::kPrefix, id}; }

struct EdgeKey {
  NodeId from;
  NodeId to;
  friend bool operator==(const EdgeKey&, const EdgeKey&) = default;
};

struct EdgeKeyHash {
  std::size_t operator()(const EdgeKey& e) const {
    const NodeIdHash h;
    return h(e.from) * 0x100000001b3ULL ^ h(e.to);
  }
};

class TampGraph {
 public:
  struct Options {
    // Include per-prefix leaf nodes.  Off by default: at ISP scale the
    // leaves dominate memory yet are always pruned from pictures.
    bool include_prefix_leaves = false;
    std::string root_name = "site";
  };

  TampGraph() : TampGraph(Options{}) {}
  explicit TampGraph(Options options);

  // --- incremental maintenance -----------------------------------------
  void AddRoute(const collector::RouteEntry& route);
  void RemoveRoute(const collector::RouteEntry& route);

  // Builds a picture of a snapshot in one shot.
  static TampGraph FromSnapshot(
      const std::vector<collector::RouteEntry>& snapshot, Options options);
  static TampGraph FromSnapshot(
      const std::vector<collector::RouteEntry>& snapshot) {
    return FromSnapshot(snapshot, Options{});
  }

  // --- structure ---------------------------------------------------------
  struct Edge {
    NodeId from;
    NodeId to;
    std::size_t weight = 0;  // unique prefixes currently on the edge
  };

  // All edges with nonzero weight (unspecified order).
  std::vector<Edge> Edges() const;
  std::size_t EdgeCount() const { return edges_.size(); }

  // Weight of a specific edge (0 if absent).
  std::size_t EdgeWeight(const NodeId& from, const NodeId& to) const;
  bool EdgeCarries(const NodeId& from, const NodeId& to,
                   const bgp::Prefix& prefix) const;

  // Unique prefixes across the whole graph (the denominator of the 5 %
  // pruning threshold).
  std::size_t UniquePrefixCount() const { return prefix_use_.size(); }
  std::size_t RouteCount() const { return route_count_; }

  // --- naming ------------------------------------------------------------
  // Human-readable node label: the root name, dotted-quad addresses, AS
  // names ("QWest (209)" when registered via SetAsName), prefix strings.
  std::string NodeName(const NodeId& node) const;
  void SetAsName(bgp::AsNumber asn, std::string name);
  const std::string& root_name() const { return options_.root_name; }

  const util::InternPool<bgp::Prefix, bgp::PrefixHash>& prefix_pool() const {
    return prefix_pool_;
  }

  // The node sequence a route contributes: root → peer → nexthop → ASes
  // (consecutive prepends collapsed) → optional prefix leaf.  Exposed so
  // the animator can track per-edge dynamics; a prefix not yet interned
  // in `pool` simply omits the leaf.
  static std::vector<NodeId> RoutePathNodes(
      const collector::RouteEntry& route, bool include_prefix_leaves,
      const util::InternPool<bgp::Prefix, bgp::PrefixHash>& pool);

 private:
  // Edge payload: per-prefix route counts.  A prefix contributes to the
  // weight while its count is positive; the count tracks how many current
  // routes put this prefix on this edge (several peers' trees may).
  struct EdgeData {
    std::unordered_map<PrefixId, std::uint32_t> prefix_counts;
  };

  // The node sequence of a route's tree path.
  std::vector<NodeId> PathNodes(const collector::RouteEntry& route,
                                PrefixId prefix_id) const;

  void BumpEdge(const NodeId& from, const NodeId& to, PrefixId prefix, int delta);

  Options options_;
  std::unordered_map<EdgeKey, EdgeData, EdgeKeyHash> edges_;
  util::InternPool<bgp::Prefix, bgp::PrefixHash> prefix_pool_;
  // Global per-prefix route counts (for UniquePrefixCount under removal).
  std::unordered_map<PrefixId, std::uint32_t> prefix_use_;
  std::unordered_map<bgp::AsNumber, std::string> as_names_;
  std::size_t route_count_ = 0;
};

}  // namespace ranomaly::tamp
