#include "tamp/animation.h"

#include <algorithm>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace ranomaly::tamp {

Animator::Animator(const std::vector<collector::RouteEntry>& initial_snapshot,
                   AnimationOptions options)
    : options_(std::move(options)), graph_(options_.graph) {
  for (const collector::RouteEntry& route : initial_snapshot) {
    graph_.AddRoute(route);
    shadow_[PeerPrefixKey{route.peer, route.prefix}] = route.attrs;
  }
  // Seed dynamics with the initial weights so shadows start correct.
  for (const auto& e : graph_.Edges()) {
    EdgeDynamics dyn;
    dyn.frame_start_weight = e.weight;
    dyn.current_weight = e.weight;
    dyn.max_weight = e.weight;
    dynamics_.emplace(EdgeKey{e.from, e.to}, dyn);
  }
}

void Animator::TrackEdge(const NodeId& from, const NodeId& to) {
  tracked_ = EdgeKey{from, to};
}

void Animator::TrackEdges(const std::vector<EdgeKey>& edges) {
  for (const EdgeKey& edge : edges) tracked_set_.try_emplace(edge);
}

const std::vector<std::size_t>& Animator::SeriesFor(
    const EdgeKey& edge) const {
  static const std::vector<std::size_t> kEmpty;
  const auto it = tracked_set_.find(edge);
  return it == tracked_set_.end() ? kEmpty : it->second;
}

void Animator::TouchEdges(const std::vector<NodeId>& nodes,
                          const std::vector<std::size_t>& before) {
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    const EdgeKey key{nodes[i], nodes[i + 1]};
    const std::size_t after = graph_.EdgeWeight(key.from, key.to);
    if (after == before[i]) continue;
    auto& dyn = dynamics_[key];
    if (!dyn.touched_this_frame) {
      dyn.touched_this_frame = true;
      dyn.frame_start_weight = dyn.current_weight;
      dyn.flips = 0;
      dyn.last_direction = 0;
      touched_.push_back(key);
    }
    const int direction = after > before[i] ? +1 : -1;
    if (dyn.last_direction != 0 && direction != dyn.last_direction) {
      ++dyn.flips;
    }
    dyn.last_direction = direction;
    dyn.current_weight = after;
    dyn.max_weight = std::max(dyn.max_weight, after);
  }
}

void Animator::ApplyEvent(const bgp::Event& event) {
  if (bgp::IsMarker(event.type)) return;  // no route content to map
  const PeerPrefixKey key{event.peer, event.prefix};

  // Collect the union of old+new path edges and their weights before.
  std::vector<NodeId> old_nodes;
  const auto sit = shadow_.find(key);
  if (sit != shadow_.end()) {
    old_nodes = TampGraph::RoutePathNodes(
        collector::RouteEntry{event.peer, event.prefix, sit->second},
        options_.graph.include_prefix_leaves, graph_.prefix_pool());
  }
  std::vector<NodeId> new_nodes;
  if (event.type == bgp::EventType::kAnnounce) {
    new_nodes = TampGraph::RoutePathNodes(
        collector::RouteEntry{event.peer, event.prefix, event.attrs},
        options_.graph.include_prefix_leaves, graph_.prefix_pool());
  }

  auto snapshot_weights = [&](const std::vector<NodeId>& nodes) {
    std::vector<std::size_t> w(nodes.empty() ? 0 : nodes.size() - 1);
    for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
      w[i] = graph_.EdgeWeight(nodes[i], nodes[i + 1]);
    }
    return w;
  };
  const std::vector<std::size_t> old_before = snapshot_weights(old_nodes);

  if (sit != shadow_.end()) {
    graph_.RemoveRoute(
        collector::RouteEntry{event.peer, event.prefix, sit->second});
  }
  // Old edges changed (or not); record against pre-removal weights.
  TouchEdges(old_nodes, old_before);

  if (event.type == bgp::EventType::kAnnounce) {
    const std::vector<std::size_t> new_before = snapshot_weights(new_nodes);
    graph_.AddRoute(
        collector::RouteEntry{event.peer, event.prefix, event.attrs});
    TouchEdges(new_nodes, new_before);
    shadow_[key] = event.attrs;
  } else {
    shadow_.erase(key);
  }
}

void Animator::CloseFrame() {
  for (const EdgeKey& key : touched_) {
    auto& dyn = dynamics_[key];
    if (dyn.flips >= options_.flap_flips_threshold) {
      dyn.color = EdgeColor::kYellow;
    } else if (dyn.current_weight < dyn.frame_start_weight) {
      dyn.color = EdgeColor::kBlue;
    } else if (dyn.current_weight > dyn.frame_start_weight) {
      dyn.color = EdgeColor::kGreen;
    } else {
      dyn.color = EdgeColor::kBlack;
    }
  }
}

Animator::Result Animator::Play(std::span<const bgp::Event> events,
                                const FrameCallback& on_frame) {
  if (played_) throw std::logic_error("Animator::Play called twice");
  played_ = true;

  obs::TraceSpan play_span("tamp.play");
  play_span.Annotate("events", static_cast<std::uint64_t>(events.size()));
  Result result;
  result.total_events = events.size();
  const int total_frames = std::max(1, options_.TotalFrames());
  result.frames.reserve(static_cast<std::size_t>(total_frames));

  const util::SimTime t0 = events.empty() ? 0 : events.front().time;
  const util::SimTime t_end = events.empty() ? 0 : events.back().time;
  result.timerange = t_end - t0;
  // Each frame consolidates an equal slice of the event timerange.
  const util::SimDuration slice =
      std::max<util::SimDuration>(1, (result.timerange + total_frames) /
                                         total_frames);

  std::size_t next_event = 0;
  for (int frame = 0; frame < total_frames; ++frame) {
    const util::SimTime frame_end_time =
        t0 + static_cast<util::SimTime>(frame + 1) * slice;

    // Reset per-frame state.
    for (const EdgeKey& key : touched_) {
      auto& dyn = dynamics_[key];
      dyn.touched_this_frame = false;
      dyn.color = EdgeColor::kBlack;
    }
    touched_.clear();

    const util::StageTimer frame_timer;
    obs::TraceSpan frame_span("tamp.frame");
    FrameStats stats;
    stats.clock = frame_end_time - t0;
    while (next_event < events.size() &&
           (events[next_event].time < frame_end_time ||
            frame == total_frames - 1)) {
      ApplyEvent(events[next_event]);
      ++next_event;
      ++stats.events_applied;
    }
    CloseFrame();

    for (const EdgeKey& key : touched_) {
      switch (dynamics_[key].color) {
        case EdgeColor::kGreen: ++stats.edges_gaining; break;
        case EdgeColor::kBlue: ++stats.edges_losing; break;
        case EdgeColor::kYellow: ++stats.edges_flapping; break;
        case EdgeColor::kBlack: break;
      }
    }

    if (tracked_) {
      tracked_series_.push_back(
          graph_.EdgeWeight(tracked_->from, tracked_->to));
    }
    for (auto& [key, series] : tracked_set_) {
      series.push_back(graph_.EdgeWeight(key.from, key.to));
    }

    frame_span.Annotate("events_applied",
                        static_cast<std::uint64_t>(stats.events_applied));
    RANOMALY_METRIC_COUNT("tamp_frames_total", 1);
    RANOMALY_METRIC_COUNT("tamp_events_applied_total", stats.events_applied);
    RANOMALY_METRIC_OBSERVE("tamp_frame_seconds", obs::TimeBounds(),
                            frame_timer.Seconds());
    result.frames.push_back(stats);
    if (on_frame) on_frame(static_cast<std::size_t>(frame), stats);
  }
  return result;
}

std::vector<EdgeDecoration> Animator::DecorationsFor(
    const PrunedGraph& pruned) const {
  std::vector<EdgeDecoration> out(pruned.edges.size());
  for (std::size_t i = 0; i < pruned.edges.size(); ++i) {
    const EdgeKey key{pruned.nodes[pruned.edges[i].from].id,
                      pruned.nodes[pruned.edges[i].to].id};
    const auto it = dynamics_.find(key);
    if (it == dynamics_.end()) continue;
    out[i].color = it->second.color;
    if (it->second.max_weight > it->second.current_weight) {
      out[i].shadow_weight = it->second.max_weight;
    }
  }
  return out;
}

EdgePlot Animator::TrackedPlot() const {
  EdgePlot plot;
  if (tracked_) {
    plot.edge_label = graph_.NodeName(tracked_->from) + " -> " +
                      graph_.NodeName(tracked_->to);
    plot.weights = tracked_series_;
  }
  return plot;
}

}  // namespace ranomaly::tamp
