// Graph pruning — the "Threshold" in TAMP.
//
// An unpruned TAMP graph of any realistic network is an ink blob: the
// Internet core is well connected with huge fan-out toward the edges.
// Pruning keeps only parts that carry at least a threshold fraction of
// the graph's unique prefixes (paper default: 5 %).  Hierarchical pruning
// applies *increasing* thresholds with distance from the root, because an
// operator cares about every element of his own domain no matter how few
// prefixes it carries — this is what exposes the two backdoor routes of
// Fig 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "tamp/graph.h"

namespace ranomaly::tamp {

struct PruneOptions {
  // Flat threshold: drop edges carrying < threshold * total prefixes.
  double threshold = 0.05;
  // Hierarchical pruning: per-depth thresholds, indexed by the depth of
  // the edge's *far* endpoint (root = depth 0).  Depths beyond the vector
  // reuse the last entry.  Empty => use the flat `threshold` everywhere.
  // Fig 5's setting is {0, 0, 0, 0, 0.05}: peers (1), nexthops (2) and
  // neighbor ASes (3) always shown, 5 % beyond.
  std::vector<double> depth_thresholds;
};

// A pruned, render-ready view of a TAMP graph.
struct PrunedGraph {
  struct Node {
    NodeId id;
    std::string name;
    std::size_t depth = 0;  // BFS depth from root
  };
  struct Edge {
    std::size_t from = 0;  // indices into `nodes`
    std::size_t to = 0;
    std::size_t weight = 0;
    double fraction = 0.0;  // weight / total_prefixes
  };

  std::vector<Node> nodes;
  std::vector<Edge> edges;
  std::size_t total_prefixes = 0;
  std::size_t pruned_edges = 0;  // how many the threshold removed

  // Index of a node in `nodes`, or npos.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);
  std::size_t FindNode(const NodeId& id) const;
  // Fraction on the edge between two node ids (0 if absent).
  double EdgeFraction(const NodeId& from, const NodeId& to) const;
};

// Prunes `graph`.  Nodes unreachable from the root through surviving
// edges are dropped with their edges, so the result is always a connected
// left-to-right drawing.
PrunedGraph Prune(const TampGraph& graph, const PruneOptions& options = {});

}  // namespace ranomaly::tamp
