// Layered graph layout for TAMP pictures.
//
// The paper used AT&T graphviz; this is our own Sugiyama-style pipeline
// (layer by BFS depth, barycenter crossing reduction, coordinate
// assignment) producing the same left-to-right drawings: data flows
// left→right, BGP information right→left.  A DOT emitter (dot.h) is also
// provided for environments where graphviz is available.
#pragma once

#include <cstddef>
#include <vector>

#include "tamp/prune.h"

namespace ranomaly::tamp {

struct LayoutOptions {
  double layer_gap = 200.0;  // horizontal distance between depth layers
  double node_gap = 52.0;    // vertical distance between node slots
  int barycenter_iterations = 8;
  double margin = 40.0;
};

struct Layout {
  struct PlacedNode {
    double x = 0.0;  // center
    double y = 0.0;
    double width = 0.0;
    double height = 0.0;
  };

  std::vector<PlacedNode> nodes;  // parallel to PrunedGraph::nodes
  double width = 0.0;
  double height = 0.0;
};

Layout ComputeLayout(const PrunedGraph& graph,
                     const LayoutOptions& options = {});

// Number of edge crossings in the drawing (layout quality metric; used by
// tests to assert barycenter actually reduces crossings).
std::size_t CountCrossings(const PrunedGraph& graph, const Layout& layout);

}  // namespace ranomaly::tamp
