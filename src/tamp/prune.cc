#include "tamp/prune.h"

#include <algorithm>
#include <deque>
#include <unordered_map>

namespace ranomaly::tamp {

std::size_t PrunedGraph::FindNode(const NodeId& id) const {
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].id == id) return i;
  }
  return npos;
}

double PrunedGraph::EdgeFraction(const NodeId& from, const NodeId& to) const {
  const std::size_t f = FindNode(from);
  const std::size_t t = FindNode(to);
  if (f == npos || t == npos) return 0.0;
  for (const Edge& e : edges) {
    if (e.from == f && e.to == t) return e.fraction;
  }
  return 0.0;
}

PrunedGraph Prune(const TampGraph& graph, const PruneOptions& options) {
  PrunedGraph out;
  out.total_prefixes = graph.UniquePrefixCount();
  const auto all_edges = graph.Edges();
  if (out.total_prefixes == 0) {
    out.nodes.push_back(
        PrunedGraph::Node{RootNode(), graph.NodeName(RootNode()), 0});
    out.pruned_edges = all_edges.size();
    return out;
  }

  // Depth of every node: BFS over the full graph from the root.
  std::unordered_map<NodeId, std::size_t, NodeIdHash> depth;
  {
    std::unordered_map<NodeId, std::vector<NodeId>, NodeIdHash> adj;
    for (const auto& e : all_edges) adj[e.from].push_back(e.to);
    std::deque<NodeId> queue{RootNode()};
    depth[RootNode()] = 0;
    while (!queue.empty()) {
      const NodeId u = queue.front();
      queue.pop_front();
      const auto it = adj.find(u);
      if (it == adj.end()) continue;
      for (const NodeId& v : it->second) {
        if (depth.try_emplace(v, depth[u] + 1).second) queue.push_back(v);
      }
    }
  }

  auto threshold_at = [&](std::size_t edge_depth) {
    if (options.depth_thresholds.empty()) return options.threshold;
    const std::size_t i =
        std::min(edge_depth, options.depth_thresholds.size() - 1);
    return options.depth_thresholds[i];
  };

  const double total = static_cast<double>(out.total_prefixes);

  // Keep edges meeting their depth's threshold.
  std::vector<TampGraph::Edge> kept;
  for (const auto& e : all_edges) {
    const auto dit = depth.find(e.to);
    if (dit == depth.end()) continue;  // unreachable from root
    const double fraction = static_cast<double>(e.weight) / total;
    if (fraction >= threshold_at(dit->second) - 1e-12) kept.push_back(e);
  }

  // Connectivity pass: only keep edges on paths from the root through
  // kept edges.
  std::unordered_map<NodeId, std::vector<std::size_t>, NodeIdHash> kept_adj;
  for (std::size_t i = 0; i < kept.size(); ++i) {
    kept_adj[kept[i].from].push_back(i);
  }
  std::unordered_map<NodeId, std::size_t, NodeIdHash> node_index;
  auto intern_node = [&](const NodeId& id) {
    const auto [it, inserted] = node_index.try_emplace(id, out.nodes.size());
    if (inserted) {
      out.nodes.push_back(
          PrunedGraph::Node{id, graph.NodeName(id), depth.at(id)});
    }
    return it->second;
  };

  intern_node(RootNode());
  std::vector<bool> edge_taken(kept.size(), false);
  std::deque<NodeId> queue{RootNode()};
  std::unordered_map<NodeId, bool, NodeIdHash> visited;
  visited[RootNode()] = true;
  while (!queue.empty()) {
    const NodeId u = queue.front();
    queue.pop_front();
    const auto it = kept_adj.find(u);
    if (it == kept_adj.end()) continue;
    for (const std::size_t ei : it->second) {
      edge_taken[ei] = true;
      const NodeId& v = kept[ei].to;
      if (!visited[v]) {
        visited[v] = true;
        queue.push_back(v);
      }
    }
  }

  for (std::size_t i = 0; i < kept.size(); ++i) {
    if (!edge_taken[i]) continue;
    const std::size_t f = intern_node(kept[i].from);
    const std::size_t t = intern_node(kept[i].to);
    out.edges.push_back(PrunedGraph::Edge{
        f, t, kept[i].weight, static_cast<double>(kept[i].weight) / total});
  }
  out.pruned_edges = all_edges.size() - out.edges.size();

  // Stable, readable ordering: by depth then name.
  // (Rendering relies on node order only for layout seeds; edges use
  // indices, so we must remap after sorting.)
  std::vector<std::size_t> order(out.nodes.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (out.nodes[a].depth != out.nodes[b].depth) {
      return out.nodes[a].depth < out.nodes[b].depth;
    }
    return out.nodes[a].name < out.nodes[b].name;
  });
  std::vector<std::size_t> inverse(order.size());
  for (std::size_t i = 0; i < order.size(); ++i) inverse[order[i]] = i;
  std::vector<PrunedGraph::Node> sorted_nodes;
  sorted_nodes.reserve(out.nodes.size());
  for (const std::size_t i : order) sorted_nodes.push_back(out.nodes[i]);
  out.nodes = std::move(sorted_nodes);
  for (auto& e : out.edges) {
    e.from = inverse[e.from];
    e.to = inverse[e.to];
  }
  std::sort(out.edges.begin(), out.edges.end(),
            [](const PrunedGraph::Edge& a, const PrunedGraph::Edge& b) {
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  return out;
}

}  // namespace ranomaly::tamp
