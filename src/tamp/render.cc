#include "tamp/render.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"
#include "util/strings.h"

namespace ranomaly::tamp {
namespace {

using util::StrPrintf;

std::string EscapeXml(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

double StrokeFor(double fraction, const RenderOptions& options) {
  return std::max(options.min_stroke, options.max_stroke * fraction);
}

void AppendEdgeLine(std::string& svg, const Layout& layout,
                    const PrunedGraph::Edge& e, double stroke,
                    const char* color, double opacity) {
  const auto& a = layout.nodes[e.from];
  const auto& b = layout.nodes[e.to];
  const double x1 = a.x + a.width / 2.0;
  const double x2 = b.x - b.width / 2.0;
  svg += StrPrintf(
      "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
      "stroke=\"%s\" stroke-width=\"%.1f\" stroke-opacity=\"%.2f\"/>\n",
      x1, a.y, x2, b.y, color, stroke, opacity);
}

void AppendNodes(std::string& svg, const PrunedGraph& graph,
                 const Layout& layout) {
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    const auto& node = graph.nodes[i];
    const auto& p = layout.nodes[i];
    const char* fill = node.depth == 0 ? "#dbe9ff" : "#f5f5f0";
    svg += StrPrintf(
        "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
        "rx=\"4\" fill=\"%s\" stroke=\"#444\"/>\n",
        p.x - p.width / 2.0, p.y - p.height / 2.0, p.width, p.height, fill);
    svg += StrPrintf(
        "  <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
        "font-family=\"monospace\" font-size=\"12\">%s</text>\n",
        p.x, p.y + 4.0, EscapeXml(node.name).c_str());
  }
}

void AppendPercentLabels(std::string& svg, const PrunedGraph& graph,
                         const Layout& layout) {
  for (const auto& e : graph.edges) {
    const auto& a = layout.nodes[e.from];
    const auto& b = layout.nodes[e.to];
    const double mx = (a.x + a.width / 2.0 + b.x - b.width / 2.0) / 2.0;
    const double my = (a.y + b.y) / 2.0 - 5.0;
    svg += StrPrintf(
        "  <text x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\" "
        "font-family=\"monospace\" font-size=\"10\" fill=\"#555\">"
        "%.0f%%</text>\n",
        mx, my, e.fraction * 100.0);
  }
}

std::string SvgHeader(double width, double height) {
  return StrPrintf(
      "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%.0f\" "
      "height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">\n"
      "  <rect width=\"100%%\" height=\"100%%\" fill=\"white\"/>\n",
      width, height, width, height);
}

}  // namespace

const char* ToSvgColor(EdgeColor color) {
  switch (color) {
    case EdgeColor::kBlack: return "#000000";
    case EdgeColor::kBlue: return "#1f5fd0";
    case EdgeColor::kGreen: return "#1e9e3a";
    case EdgeColor::kYellow: return "#e0c000";
  }
  return "#000000";
}

std::string RenderSvg(const PrunedGraph& graph, const Layout& layout,
                      const RenderOptions& options) {
  obs::TraceSpan span("tamp.render_svg");
  const util::StageTimer timer;
  RANOMALY_METRIC_COUNT("tamp_renders_total", 1);
  std::string svg = SvgHeader(layout.width, layout.height + 30.0);
  if (!options.title.empty()) {
    svg += StrPrintf(
        "  <text x=\"%.1f\" y=\"20\" font-family=\"sans-serif\" "
        "font-size=\"14\" font-weight=\"bold\">%s</text>\n",
        10.0, EscapeXml(options.title).c_str());
  }
  for (const auto& e : graph.edges) {
    AppendEdgeLine(svg, layout, e, StrokeFor(e.fraction, options), "#000000",
                   0.85);
  }
  if (options.show_percentages) AppendPercentLabels(svg, graph, layout);
  AppendNodes(svg, graph, layout);
  svg += "</svg>\n";
  RANOMALY_METRIC_OBSERVE("tamp_render_seconds", obs::TimeBounds(),
                          timer.Seconds());
  return svg;
}

std::string RenderAnimationFrameSvg(
    const PrunedGraph& graph, const Layout& layout,
    const std::vector<EdgeDecoration>& decorations, util::SimTime clock,
    const std::optional<EdgePlot>& plot, const RenderOptions& options) {
  const double panel_height = plot ? 140.0 : 50.0;
  std::string svg = SvgHeader(std::max(layout.width, 480.0),
                              layout.height + panel_height);
  if (!options.title.empty()) {
    svg += StrPrintf(
        "  <text x=\"10\" y=\"20\" font-family=\"sans-serif\" "
        "font-size=\"14\" font-weight=\"bold\">%s</text>\n",
        EscapeXml(options.title).c_str());
  }

  const double total = static_cast<double>(std::max<std::size_t>(
      graph.total_prefixes, 1));
  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const auto& e = graph.edges[i];
    const EdgeDecoration dec =
        i < decorations.size() ? decorations[i] : EdgeDecoration{};
    // Gray shadow first (historical max), then the live edge on top.
    if (dec.shadow_weight > e.weight) {
      const double shadow_fraction =
          static_cast<double>(dec.shadow_weight) / total;
      AppendEdgeLine(svg, layout, e, StrokeFor(shadow_fraction, options),
                     "#b0b0b0", 0.6);
    }
    AppendEdgeLine(svg, layout, e, StrokeFor(e.fraction, options),
                   ToSvgColor(dec.color), 0.9);
  }
  if (options.show_percentages) AppendPercentLabels(svg, graph, layout);
  AppendNodes(svg, graph, layout);

  // Animation clock.
  svg += StrPrintf(
      "  <text x=\"10\" y=\"%.1f\" font-family=\"monospace\" "
      "font-size=\"13\">clock %s</text>\n",
      layout.height + 24.0, util::FormatTime(clock).c_str());

  // Selected-edge plot: impulses of the prefix count per frame.
  if (plot && !plot->weights.empty()) {
    const double px = 10.0;
    const double py = layout.height + 40.0;
    const double pw = std::max(layout.width, 480.0) - 20.0;
    const double ph = 80.0;
    svg += StrPrintf(
        "  <rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" "
        "fill=\"#fafaf5\" stroke=\"#999\"/>\n",
        px, py, pw, ph);
    const std::size_t max_w = *std::max_element(plot->weights.begin(),
                                                plot->weights.end());
    const double scale = max_w == 0 ? 0.0 : (ph - 8.0) / static_cast<double>(max_w);
    const double dx = pw / static_cast<double>(plot->weights.size());
    for (std::size_t i = 0; i < plot->weights.size(); ++i) {
      const double h = static_cast<double>(plot->weights[i]) * scale;
      if (h <= 0.0) continue;
      const double x = px + dx * (static_cast<double>(i) + 0.5);
      svg += StrPrintf(
          "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
          "stroke=\"#c03020\" stroke-width=\"1\"/>\n",
          x, py + ph - 2.0, x, py + ph - 2.0 - h);
    }
    svg += StrPrintf(
        "  <text x=\"%.1f\" y=\"%.1f\" font-family=\"monospace\" "
        "font-size=\"10\">%s</text>\n",
        px + 4.0, py + 12.0, EscapeXml(plot->edge_label).c_str());
  }

  svg += "</svg>\n";
  return svg;
}

std::string RenderAnimatedSvg(
    const PrunedGraph& graph, const Layout& layout,
    const std::vector<std::vector<std::size_t>>& series, double play_seconds,
    const RenderOptions& options) {
  obs::TraceSpan span("tamp.render_animated_svg");
  const util::StageTimer timer;
  RANOMALY_METRIC_COUNT("tamp_renders_total", 1);
  std::string svg = SvgHeader(layout.width, layout.height + 30.0);
  if (!options.title.empty()) {
    svg += StrPrintf(
        "  <text x=\"10\" y=\"20\" font-family=\"sans-serif\" "
        "font-size=\"14\" font-weight=\"bold\">%s</text>\n",
        EscapeXml(options.title).c_str());
  }
  const double total = static_cast<double>(
      std::max<std::size_t>(graph.total_prefixes, 1));

  for (std::size_t i = 0; i < graph.edges.size(); ++i) {
    const auto& e = graph.edges[i];
    const auto& a = layout.nodes[e.from];
    const auto& b = layout.nodes[e.to];
    const double x1 = a.x + a.width / 2.0;
    const double x2 = b.x - b.width / 2.0;
    const bool animated = i < series.size() && !series[i].empty();
    svg += StrPrintf(
        "  <line x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\" "
        "stroke=\"#000000\" stroke-width=\"%.1f\" stroke-opacity=\"0.9\"%s\n",
        x1, a.y, x2, b.y, StrokeFor(e.fraction, options),
        animated ? ">" : "/>");
    if (!animated) continue;

    // Keyframe lists: stroke width from the weight, color from the delta
    // direction (green gaining, blue losing, black steady).
    const auto& weights = series[i];
    std::string width_values;
    std::string color_values;
    width_values.reserve(weights.size() * 5);
    for (std::size_t f = 0; f < weights.size(); ++f) {
      if (f != 0) {
        width_values += ';';
        color_values += ';';
      }
      const double fraction = static_cast<double>(weights[f]) / total;
      width_values += StrPrintf("%.1f", StrokeFor(fraction, options));
      if (f == 0 || weights[f] == weights[f - 1]) {
        color_values += ToSvgColor(EdgeColor::kBlack);
      } else if (weights[f] > weights[f - 1]) {
        color_values += ToSvgColor(EdgeColor::kGreen);
      } else {
        color_values += ToSvgColor(EdgeColor::kBlue);
      }
    }
    svg += StrPrintf(
        "    <animate attributeName=\"stroke-width\" values=\"%s\" "
        "dur=\"%.0fs\" repeatCount=\"indefinite\" calcMode=\"discrete\"/>\n",
        width_values.c_str(), play_seconds);
    svg += StrPrintf(
        "    <animate attributeName=\"stroke\" values=\"%s\" dur=\"%.0fs\" "
        "repeatCount=\"indefinite\" calcMode=\"discrete\"/>\n",
        color_values.c_str(), play_seconds);
    svg += "  </line>\n";
  }

  if (options.show_percentages) AppendPercentLabels(svg, graph, layout);
  AppendNodes(svg, graph, layout);
  svg += StrPrintf(
      "  <text x=\"10\" y=\"%.1f\" font-family=\"monospace\" "
      "font-size=\"12\">replaying %.0fs loop (%zu frames)</text>\n",
      layout.height + 24.0, play_seconds,
      series.empty() ? 0 : series.front().size());
  svg += "</svg>\n";
  RANOMALY_METRIC_OBSERVE("tamp_render_seconds", obs::TimeBounds(),
                          timer.Seconds());
  return svg;
}

std::string RenderDot(const PrunedGraph& graph, const RenderOptions& options) {
  std::string dot = "digraph tamp {\n  rankdir=LR;\n  node [shape=box, "
                    "fontname=\"monospace\"];\n";
  if (!options.title.empty()) {
    dot += "  label=\"" + options.title + "\";\n";
  }
  for (std::size_t i = 0; i < graph.nodes.size(); ++i) {
    dot += StrPrintf("  n%zu [label=\"%s\"];\n", i,
                     graph.nodes[i].name.c_str());
  }
  for (const auto& e : graph.edges) {
    const double penwidth =
        std::max(options.min_stroke, options.max_stroke * e.fraction);
    dot += StrPrintf(
        "  n%zu -> n%zu [penwidth=%.1f, label=\"%zu (%.0f%%)\"];\n", e.from,
        e.to, penwidth, e.weight, e.fraction * 100.0);
  }
  dot += "}\n";
  return dot;
}

}  // namespace ranomaly::tamp
