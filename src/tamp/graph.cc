#include "tamp/graph.h"

#include <stdexcept>

namespace ranomaly::tamp {

const char* ToString(NodeKind kind) {
  switch (kind) {
    case NodeKind::kRoot: return "root";
    case NodeKind::kPeer: return "peer";
    case NodeKind::kNexthop: return "nexthop";
    case NodeKind::kAs: return "as";
    case NodeKind::kPrefix: return "prefix";
  }
  return "?";
}

TampGraph::TampGraph(Options options) : options_(std::move(options)) {}

std::vector<NodeId> TampGraph::PathNodes(const collector::RouteEntry& route,
                                         PrefixId prefix_id) const {
  std::vector<NodeId> nodes =
      RoutePathNodes(route, /*include_prefix_leaves=*/false, prefix_pool_);
  if (options_.include_prefix_leaves) {
    nodes.push_back(PrefixNode(prefix_id));
  }
  return nodes;
}

std::vector<NodeId> TampGraph::RoutePathNodes(
    const collector::RouteEntry& route, bool include_prefix_leaves,
    const util::InternPool<bgp::Prefix, bgp::PrefixHash>& pool) {
  std::vector<NodeId> nodes;
  nodes.reserve(route.attrs.as_path.Length() + 4);
  nodes.push_back(RootNode());
  nodes.push_back(PeerNode(route.peer));
  nodes.push_back(NexthopNode(route.attrs.nexthop));
  // Collapse consecutive duplicates (AS-path prepending) so prepends do
  // not create self-edges.
  bgp::AsNumber last_as = 0;
  bool have_last = false;
  for (bgp::AsNumber asn : route.attrs.as_path.asns()) {
    if (have_last && asn == last_as) continue;
    nodes.push_back(AsNode(asn));
    last_as = asn;
    have_last = true;
  }
  if (include_prefix_leaves) {
    const PrefixId pid = pool.Find(route.prefix);
    if (pid != util::InternPool<bgp::Prefix, bgp::PrefixHash>::kNotFound) {
      nodes.push_back(PrefixNode(pid));
    }
  }
  return nodes;
}

void TampGraph::BumpEdge(const NodeId& from, const NodeId& to, PrefixId prefix,
                         int delta) {
  const EdgeKey key{from, to};
  if (delta > 0) {
    edges_[key].prefix_counts[prefix] +=
        static_cast<std::uint32_t>(delta);
    return;
  }
  const auto eit = edges_.find(key);
  if (eit == edges_.end()) return;
  auto& counts = eit->second.prefix_counts;
  const auto pit = counts.find(prefix);
  if (pit == counts.end()) return;
  if (pit->second <= static_cast<std::uint32_t>(-delta)) {
    counts.erase(pit);
    if (counts.empty()) edges_.erase(eit);
  } else {
    pit->second -= static_cast<std::uint32_t>(-delta);
  }
}

void TampGraph::AddRoute(const collector::RouteEntry& route) {
  const PrefixId pid = prefix_pool_.Intern(route.prefix);
  const std::vector<NodeId> nodes = PathNodes(route, pid);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    BumpEdge(nodes[i], nodes[i + 1], pid, +1);
  }
  ++prefix_use_[pid];
  ++route_count_;
}

void TampGraph::RemoveRoute(const collector::RouteEntry& route) {
  const PrefixId pid = prefix_pool_.Find(route.prefix);
  if (pid == util::InternPool<bgp::Prefix, bgp::PrefixHash>::kNotFound) {
    return;  // never added
  }
  const auto uit = prefix_use_.find(pid);
  if (uit == prefix_use_.end()) return;  // not currently in the graph
  const std::vector<NodeId> nodes = PathNodes(route, pid);
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    BumpEdge(nodes[i], nodes[i + 1], pid, -1);
  }
  if (uit->second <= 1) {
    prefix_use_.erase(uit);
  } else {
    --uit->second;
  }
  if (route_count_ > 0) --route_count_;
}

TampGraph TampGraph::FromSnapshot(
    const std::vector<collector::RouteEntry>& snapshot, Options options) {
  TampGraph graph(std::move(options));
  for (const collector::RouteEntry& route : snapshot) graph.AddRoute(route);
  return graph;
}

std::vector<TampGraph::Edge> TampGraph::Edges() const {
  std::vector<Edge> out;
  out.reserve(edges_.size());
  for (const auto& [key, data] : edges_) {
    if (!data.prefix_counts.empty()) {
      out.push_back(Edge{key.from, key.to, data.prefix_counts.size()});
    }
  }
  return out;
}

std::size_t TampGraph::EdgeWeight(const NodeId& from, const NodeId& to) const {
  const auto it = edges_.find(EdgeKey{from, to});
  return it == edges_.end() ? 0 : it->second.prefix_counts.size();
}

bool TampGraph::EdgeCarries(const NodeId& from, const NodeId& to,
                            const bgp::Prefix& prefix) const {
  const PrefixId pid = prefix_pool_.Find(prefix);
  if (pid == util::InternPool<bgp::Prefix, bgp::PrefixHash>::kNotFound) {
    return false;
  }
  const auto it = edges_.find(EdgeKey{from, to});
  if (it == edges_.end()) return false;
  return it->second.prefix_counts.contains(pid);
}

std::string TampGraph::NodeName(const NodeId& node) const {
  switch (node.kind) {
    case NodeKind::kRoot:
      return options_.root_name;
    case NodeKind::kPeer:
    case NodeKind::kNexthop:
      return bgp::Ipv4Addr(static_cast<std::uint32_t>(node.key)).ToString();
    case NodeKind::kAs: {
      const auto asn = static_cast<bgp::AsNumber>(node.key);
      const auto it = as_names_.find(asn);
      if (it != as_names_.end()) {
        return it->second + " (" + std::to_string(asn) + ")";
      }
      return "AS" + std::to_string(asn);
    }
    case NodeKind::kPrefix: {
      const auto pid = static_cast<PrefixId>(node.key);
      if (pid < prefix_pool_.size()) return prefix_pool_.Lookup(pid).ToString();
      return "prefix#" + std::to_string(pid);
    }
  }
  return "?";
}

void TampGraph::SetAsName(bgp::AsNumber asn, std::string name) {
  as_names_[asn] = std::move(name);
}

}  // namespace ranomaly::tamp
