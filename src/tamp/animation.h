// TAMP animation — paper Section III-A.
//
// Given a starting RIB snapshot and a stream of BGP events, the animator
// replays the routing changes into the TAMP graph and consolidates them
// into a fixed 30-second, 25 fps animation (750 frames) regardless of the
// event timerange, which may span seconds to days.  Per frame it tracks,
// for every touched edge: the net prefix delta (blue = losing, green =
// gaining), the number of direction flips (yellow = flapping too fast to
// animate), and the historical maximum (the gray shadow).  A selected
// edge's prefix count is recorded per frame for the side plot of Fig 3.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bgp/attributes.h"
#include "collector/collector.h"
#include "tamp/graph.h"
#include "tamp/prune.h"
#include "tamp/render.h"
#include "util/time.h"

namespace ranomaly::tamp {

struct AnimationOptions {
  double play_seconds = 30.0;  // fixed play duration (paper: 30 s)
  int fps = 25;                // paper: standard 25 frames per second
  // An edge is drawn yellow when its prefix count changes direction at
  // least this many times within a single frame.
  int flap_flips_threshold = 3;
  TampGraph::Options graph;

  int TotalFrames() const {
    return static_cast<int>(play_seconds * fps + 0.5);
  }
};

class Animator {
 public:
  // `initial_snapshot` is the RIB state when the event window opens (may
  // be empty when animating from cold start).
  Animator(const std::vector<collector::RouteEntry>& initial_snapshot,
           AnimationOptions options = {});

  // Selects an edge whose per-frame prefix count should be recorded (the
  // Fig 3 side plot).  Call before Play.
  void TrackEdge(const NodeId& from, const NodeId& to);

  // Records per-frame weights for a whole set of edges (used by the
  // animated-SVG renderer).  Call before Play.
  void TrackEdges(const std::vector<EdgeKey>& edges);

  // Per-frame weight series of a tracked edge (empty if not tracked).
  const std::vector<std::size_t>& SeriesFor(const EdgeKey& edge) const;

  struct FrameStats {
    util::SimDuration clock = 0;  // offset into the incident at frame end
    std::size_t events_applied = 0;
    std::size_t edges_gaining = 0;
    std::size_t edges_losing = 0;
    std::size_t edges_flapping = 0;
  };

  struct Result {
    std::vector<FrameStats> frames;
    std::size_t total_events = 0;
    util::SimDuration timerange = 0;
  };

  // Called after each frame is consolidated; render selected frames from
  // inside it via graph()/DecorationsFor()/TrackedPlot().
  using FrameCallback = std::function<void(std::size_t frame_index,
                                           const FrameStats& stats)>;

  // Replays `events` (time-ordered) into the animation.  May be called
  // once per animator.
  Result Play(std::span<const bgp::Event> events,
              const FrameCallback& on_frame = {});

  const TampGraph& graph() const { return graph_; }

  // Decorations (color, shadow) for the current frame's pruned view.
  std::vector<EdgeDecoration> DecorationsFor(const PrunedGraph& pruned) const;

  // Per-frame weights of the tracked edge so far.
  EdgePlot TrackedPlot() const;

 private:
  struct EdgeDynamics {
    std::size_t frame_start_weight = 0;
    std::size_t current_weight = 0;
    std::size_t max_weight = 0;  // all-time (gray shadow)
    int flips = 0;               // direction changes this frame
    int last_direction = 0;      // -1 losing, +1 gaining
    EdgeColor color = EdgeColor::kBlack;
    bool touched_this_frame = false;
  };

  void ApplyEvent(const bgp::Event& event);
  void TouchEdges(const std::vector<NodeId>& nodes,
                  const std::vector<std::size_t>& before);
  void CloseFrame();

  AnimationOptions options_;
  TampGraph graph_;
  // Shadow RIB: last announced attributes per (peer, prefix), needed to
  // remove the old path on implicit replacement.
  struct PeerPrefixKey {
    bgp::Ipv4Addr peer;
    bgp::Prefix prefix;
    friend bool operator==(const PeerPrefixKey&, const PeerPrefixKey&) = default;
  };
  struct PeerPrefixHash {
    std::size_t operator()(const PeerPrefixKey& k) const {
      return bgp::PrefixHash{}(k.prefix) * 0x100000001b3ULL ^
             std::hash<std::uint32_t>{}(k.peer.value());
    }
  };
  std::unordered_map<PeerPrefixKey, bgp::PathAttributes, PeerPrefixHash>
      shadow_;

  std::unordered_map<EdgeKey, EdgeDynamics, EdgeKeyHash> dynamics_;
  std::vector<EdgeKey> touched_;  // edges dirtied in the current frame

  std::optional<EdgeKey> tracked_;
  std::vector<std::size_t> tracked_series_;
  // Multi-edge tracking for the animated-SVG renderer.
  std::unordered_map<EdgeKey, std::vector<std::size_t>, EdgeKeyHash>
      tracked_set_;
  bool played_ = false;
};

}  // namespace ranomaly::tamp
