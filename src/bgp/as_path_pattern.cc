#include "bgp/as_path_pattern.h"

#include <cctype>

namespace ranomaly::bgp {

std::optional<AsPathPattern> AsPathPattern::Parse(std::string_view pattern) {
  AsPathPattern out;
  out.text_ = std::string(pattern);

  std::size_t i = 0;
  const std::size_t n = pattern.size();
  if (i < n && pattern[i] == '^') {
    out.anchored_start_ = true;
    ++i;
  }

  while (i < n) {
    const char c = pattern[i];
    if (c == '$') {
      if (i + 1 != n) return std::nullopt;  // $ only at the end
      out.anchored_end_ = true;
      ++i;
      continue;
    }
    if (c == '_') {
      // Separator between AS numbers.  Digits are consumed greedily, so
      // it is never load-bearing for parsing; redundant separators
      // ("__", "^_", "_$") are harmless.
      ++i;
      continue;
    }

    Atom atom;
    if (c == '.') {
      atom.any = true;
      ++i;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      std::uint64_t value = 0;
      while (i < n && std::isdigit(static_cast<unsigned char>(pattern[i]))) {
        value = value * 10 + static_cast<std::uint64_t>(pattern[i] - '0');
        if (value > 0xffffffffULL) return std::nullopt;
        ++i;
      }
      atom.asn = static_cast<AsNumber>(value);
    } else {
      return std::nullopt;  // unsupported character
    }

    if (i < n) {
      if (pattern[i] == '*') {
        atom.quantifier = Quantifier::kStar;
        ++i;
      } else if (pattern[i] == '+') {
        atom.quantifier = Quantifier::kPlus;
        ++i;
      } else if (pattern[i] == '?') {
        atom.quantifier = Quantifier::kOptional;
        ++i;
      }
    }
    out.atoms_.push_back(atom);
  }
  return out;
}

bool AsPathPattern::MatchHere(std::size_t atom_index,
                              const std::vector<AsNumber>& asns,
                              std::size_t pos) const {
  if (atom_index == atoms_.size()) {
    return !anchored_end_ || pos == asns.size();
  }
  const Atom& atom = atoms_[atom_index];
  const auto matches_one = [&](std::size_t p) {
    return p < asns.size() && (atom.any || asns[p] == atom.asn);
  };

  switch (atom.quantifier) {
    case Quantifier::kOne:
      return matches_one(pos) && MatchHere(atom_index + 1, asns, pos + 1);
    case Quantifier::kOptional:
      if (matches_one(pos) && MatchHere(atom_index + 1, asns, pos + 1)) {
        return true;
      }
      return MatchHere(atom_index + 1, asns, pos);
    case Quantifier::kPlus:
      if (!matches_one(pos)) return false;
      ++pos;
      [[fallthrough]];
    case Quantifier::kStar: {
      // Greedy with backtracking.
      std::size_t end = pos;
      while (matches_one(end)) ++end;
      for (std::size_t p = end + 1; p-- > pos;) {
        if (MatchHere(atom_index + 1, asns, p)) return true;
      }
      return false;
    }
  }
  return false;
}

bool AsPathPattern::Matches(const AsPath& path) const {
  const auto& asns = path.asns();
  if (anchored_start_) return MatchHere(0, asns, 0);
  for (std::size_t start = 0; start <= asns.size(); ++start) {
    if (MatchHere(0, asns, start)) return true;
  }
  return false;
}

}  // namespace ranomaly::bgp
