// BGP path attributes and the REX-augmented event record.
#pragma once

#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "bgp/as_path.h"
#include "bgp/prefix.h"
#include "util/time.h"

namespace ranomaly::bgp {

enum class Origin : std::uint8_t { kIgp = 0, kEgp = 1, kIncomplete = 2 };

const char* ToString(Origin origin);

inline constexpr std::uint32_t kDefaultLocalPref = 100;

// The path attributes carried on a route.  MED is optional per RFC 4271;
// its absence and the "compare only between same neighbor AS" rule are
// what make the RFC 3345 persistent oscillation of Section IV-F possible.
struct PathAttributes {
  Ipv4Addr nexthop;
  AsPath as_path;
  Origin origin = Origin::kIgp;
  std::uint32_t local_pref = kDefaultLocalPref;
  std::optional<std::uint32_t> med;
  CommunitySet communities;
  // iBGP route-reflection attributes; zero means unset.
  std::uint32_t originator_id = 0;

  // The neighbor AS this route was learned from (first AS in the path, or
  // the peer's AS for locally originated routes); drives MED comparison.
  std::optional<AsNumber> NeighborAs() const { return as_path.FirstHop(); }

  friend bool operator==(const PathAttributes&, const PathAttributes&) = default;

  std::string ToString() const;
};

// What kind of routing change an event expresses.  kFeedGap/kResync are
// *marker* events emitted by the collection layer, not routing changes:
// a kFeedGap says "the feed from this peer degraded here (session loss or
// silent gap); routes may be stale", and the matching kResync says "the
// feed re-established and the table was re-synchronized".  Markers carry
// no prefix or attributes; analysis windows spanning them are flagged
// instead of silently misinterpreting the outage as routing activity.
enum class EventType : std::uint8_t {
  kAnnounce = 0,
  kWithdraw = 1,
  kFeedGap = 2,
  kResync = 3,
};

const char* ToString(EventType type);

// True for the collection-layer marker types (no prefix/attributes).
constexpr bool IsMarker(EventType type) {
  return type == EventType::kFeedGap || type == EventType::kResync;
}

// One REX-augmented BGP event (paper Section II): an announcement or
// withdrawal from an iBGP peer, where withdrawals carry the *old*
// attributes recovered from the collector's per-peer AdjRibIn (plain BGP
// withdrawals do not carry attributes).
struct Event {
  util::SimTime time = 0;
  Ipv4Addr peer;       // the iBGP peer (edge router / route reflector)
  EventType type = EventType::kAnnounce;
  Prefix prefix;
  PathAttributes attrs;  // new attrs for announce, old attrs for withdraw
  // When the pipeline ingested this event: the collector stamps the raw
  // arrival time, the live replay (`ranomaly serve`) stamps its batch
  // tick.  Runtime metadata for detection-latency SLOs — never
  // serialized, never compared, and 0 throughout batch analysis.
  util::SimTime ingest_tick = 0;

  // Renders in the style of the paper's Fig 4:
  // "W 128.32.1.3 NEXT_HOP: 128.32.0.70 ASPATH: 11423 209 701 PREFIX: x/y"
  std::string ToString() const;

  // Parses the Fig 4 line format produced by ToString().
  static std::optional<Event> Parse(std::string_view line);
};

}  // namespace ranomaly::bgp
