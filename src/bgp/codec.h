// RFC 4271 wire-format encoder/decoder for BGP UPDATE messages.
//
// The simulator exchanges in-memory structures for speed, but the codec
// exists so event streams can be serialized in the real on-the-wire
// format, and as an executable specification of the message layout
// (2-octet AS numbers, the paper's era; COMMUNITIES per RFC 1997).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/prefix.h"

namespace ranomaly::bgp {

enum class MessageType : std::uint8_t {
  kOpen = 1,
  kUpdate = 2,
  kNotification = 3,
  kKeepalive = 4,
};

// The body of an UPDATE: withdrawn prefixes + (attributes, announced
// prefixes).  A message may carry either or both.
struct UpdateMessage {
  std::vector<Prefix> withdrawn;
  std::optional<PathAttributes> attrs;  // required iff nlri non-empty
  std::vector<Prefix> nlri;

  friend bool operator==(const UpdateMessage&, const UpdateMessage&) = default;
};

// Encodes header + body.  Throws std::invalid_argument if the message is
// malformed (e.g. NLRI without attributes, or an AS number above 65535 —
// the codec speaks 2-octet ASNs as in the paper's era).
std::vector<std::uint8_t> EncodeUpdate(const UpdateMessage& update);

// Encodes a KEEPALIVE (header only).
std::vector<std::uint8_t> EncodeKeepalive();

struct DecodeResult {
  MessageType type = MessageType::kKeepalive;
  UpdateMessage update;  // valid when type == kUpdate
  std::size_t bytes_consumed = 0;
};

// Decodes one message from the front of `wire`.  Returns nullopt on any
// framing or attribute error (bad marker, truncation, unknown mandatory
// attribute layout, prefix overrun).
std::optional<DecodeResult> DecodeMessage(
    const std::vector<std::uint8_t>& wire);

// Outcome of a fault-tolerant decode, in the spirit of RFC 7606
// ("Revised Error Handling for BGP UPDATE Messages"): instead of treating
// every malformed octet as fatal, errors confined to the path-attribute
// block are downgraded to treat-as-withdraw so one bad attribute cannot
// take down the whole feed.
enum class DecodeStatus : std::uint8_t {
  // Message fully decoded; `result` is complete.
  kOk,
  // Header, withdrawn section or NLRI unusable (bad marker, impossible
  // length, truncation, prefix overrun).  Nothing can be salvaged; the
  // frame should be quarantined.
  kFramingError,
  // UPDATE whose framing is sound but whose path attributes are malformed
  // (or NEXT_HOP is missing for non-empty NLRI).  Per RFC 7606 the routes
  // it carries must be *withdrawn*: `result.update` holds the withdrawn
  // prefixes plus the salvaged NLRI prefixes, with `attrs` empty.
  kAttributeError,
};

const char* ToString(DecodeStatus status);

struct TolerantDecodeResult {
  DecodeStatus status = DecodeStatus::kFramingError;
  DecodeResult result;  // valid unless status == kFramingError
};

// Fault-tolerant variant of DecodeMessage.  DecodeMessage(w) is exactly
// "DecodeMessageTolerant(w).result when status == kOk, else nullopt".
TolerantDecodeResult DecodeMessageTolerant(
    const std::vector<std::uint8_t>& wire);

}  // namespace ranomaly::bgp
