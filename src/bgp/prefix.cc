#include "bgp/prefix.h"

#include <memory>

#include "util/strings.h"

namespace ranomaly::bgp {
namespace {

std::uint32_t MaskFor(std::uint8_t len) {
  return len == 0 ? 0u : (0xffffffffu << (32 - len));
}

}  // namespace

std::string Ipv4Addr::ToString() const {
  return util::StrPrintf("%u.%u.%u.%u", (value_ >> 24) & 0xff,
                         (value_ >> 16) & 0xff, (value_ >> 8) & 0xff,
                         value_ & 0xff);
}

std::optional<Ipv4Addr> Ipv4Addr::Parse(std::string_view s) {
  const auto parts = util::Split(s, '.');
  if (parts.size() != 4) return std::nullopt;
  std::uint32_t value = 0;
  for (const auto part : parts) {
    std::uint32_t octet = 0;
    if (!util::ParseU32(part, octet) || octet > 255) return std::nullopt;
    value = (value << 8) | octet;
  }
  return Ipv4Addr(value);
}

Prefix::Prefix(Ipv4Addr addr, std::uint8_t len)
    : addr_(addr.value() & MaskFor(len)), len_(len > 32 ? 32 : len) {}

bool Prefix::Contains(Ipv4Addr ip) const {
  return (ip.value() & MaskFor(len_)) == addr_.value();
}

bool Prefix::Covers(const Prefix& other) const {
  return other.len_ >= len_ && Contains(other.addr_);
}

std::string Prefix::ToString() const {
  return addr_.ToString() + "/" + std::to_string(len_);
}

std::optional<Prefix> Prefix::Parse(std::string_view s) {
  const auto slash = s.find('/');
  if (slash == std::string_view::npos) return std::nullopt;
  const auto addr = Ipv4Addr::Parse(s.substr(0, slash));
  if (!addr) return std::nullopt;
  std::uint32_t len = 0;
  if (!util::ParseU32(s.substr(slash + 1), len) || len > 32) {
    return std::nullopt;
  }
  return Prefix(*addr, static_cast<std::uint8_t>(len));
}

}  // namespace ranomaly::bgp
