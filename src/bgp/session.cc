#include "bgp/session.h"

namespace ranomaly::bgp {

const char* ToString(SessionState state) {
  switch (state) {
    case SessionState::kIdle: return "Idle";
    case SessionState::kConnect: return "Connect";
    case SessionState::kOpenSent: return "OpenSent";
    case SessionState::kOpenConfirm: return "OpenConfirm";
    case SessionState::kEstablished: return "Established";
  }
  return "?";
}

const char* ToString(SessionInput input) {
  switch (input) {
    case SessionInput::kManualStart: return "ManualStart";
    case SessionInput::kManualStop: return "ManualStop";
    case SessionInput::kTcpConnected: return "TcpConnected";
    case SessionInput::kTcpFailed: return "TcpFailed";
    case SessionInput::kOpenReceived: return "OpenReceived";
    case SessionInput::kKeepaliveReceived: return "KeepaliveReceived";
    case SessionInput::kUpdateReceived: return "UpdateReceived";
    case SessionInput::kHoldTimerExpired: return "HoldTimerExpired";
    case SessionInput::kNotificationReceived: return "NotificationReceived";
  }
  return "?";
}

SessionFsm::SessionFsm(util::SimDuration hold_time) : hold_time_(hold_time) {}

SessionActions SessionFsm::Drop() {
  SessionActions actions;
  if (state_ == SessionState::kEstablished) {
    actions.session_dropped = true;
    ++times_dropped_;
  }
  state_ = SessionState::kIdle;
  return actions;
}

SessionActions SessionFsm::OnInput(SessionInput input, util::SimTime now) {
  SessionActions actions;
  switch (input) {
    case SessionInput::kManualStart:
      if (state_ == SessionState::kIdle) state_ = SessionState::kConnect;
      break;

    case SessionInput::kManualStop:
    case SessionInput::kTcpFailed:
    case SessionInput::kNotificationReceived:
      return Drop();

    case SessionInput::kHoldTimerExpired:
      if (state_ == SessionState::kEstablished ||
          state_ == SessionState::kOpenConfirm ||
          state_ == SessionState::kOpenSent) {
        actions = Drop();
        actions.send_notification = true;
      }
      return actions;

    case SessionInput::kTcpConnected:
      if (state_ == SessionState::kConnect) {
        state_ = SessionState::kOpenSent;
        actions.send_open = true;
      }
      break;

    case SessionInput::kOpenReceived:
      if (state_ == SessionState::kOpenSent) {
        state_ = SessionState::kOpenConfirm;
        actions.send_keepalive = true;
      } else if (state_ == SessionState::kConnect) {
        // Collision-ish shortcut: respond with our OPEN then confirm.
        state_ = SessionState::kOpenConfirm;
        actions.send_open = true;
        actions.send_keepalive = true;
      }
      last_keepalive_ = now;
      break;

    case SessionInput::kKeepaliveReceived:
      last_keepalive_ = now;
      if (state_ == SessionState::kOpenConfirm) {
        state_ = SessionState::kEstablished;
        actions.session_established = true;
        ++times_established_;
      }
      break;

    case SessionInput::kUpdateReceived:
      // Updates refresh the hold timer like keepalives do.
      if (state_ == SessionState::kEstablished) {
        last_keepalive_ = now;
      }
      break;
  }
  return actions;
}

bool SessionFsm::HoldTimerExpired(util::SimTime now) const {
  if (state_ != SessionState::kEstablished &&
      state_ != SessionState::kOpenConfirm) {
    return false;
  }
  return now - last_keepalive_ > hold_time_;
}

}  // namespace ranomaly::bgp
