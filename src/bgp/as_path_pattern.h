// Cisco-style AS-path regular expressions ("ip as-path access-list").
//
// Operators ASes use every day — "^$" (my own routes), "^701_" (learned
// directly from UUNET), "_3356$" (originated by Level3), "_666_"
// (passes through AS666) — expressed over the AS sequence rather than
// its string rendering.  Supported syntax:
//
//   ^        anchor at the path's first AS
//   $        anchor after the path's last AS
//   <digits> a literal AS number
//   .        any single AS
//   _        separator between AS numbers (required between adjacent
//            literals, also accepted redundantly next to anchors)
//   x*       zero or more of the previous atom
//   x+       one or more of the previous atom
//   x?       zero or one of the previous atom
//
// A pattern without ^/$ anchors matches any contiguous sub-path, like
// grep.  `.*` therefore matches every path, including the empty one.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "bgp/as_path.h"

namespace ranomaly::bgp {

class AsPathPattern {
 public:
  // Parses a pattern; nullopt on syntax errors (bad character, dangling
  // quantifier, overflow).
  static std::optional<AsPathPattern> Parse(std::string_view pattern);

  bool Matches(const AsPath& path) const;

  const std::string& text() const { return text_; }

  friend bool operator==(const AsPathPattern& a, const AsPathPattern& b) {
    return a.text_ == b.text_;
  }

 private:
  enum class Quantifier : std::uint8_t { kOne, kStar, kPlus, kOptional };
  struct Atom {
    bool any = false;       // '.'
    AsNumber asn = 0;       // literal when !any
    Quantifier quantifier = Quantifier::kOne;
  };

  bool MatchHere(std::size_t atom_index, const std::vector<AsNumber>& asns,
                 std::size_t pos) const;

  std::string text_;
  std::vector<Atom> atoms_;
  bool anchored_start_ = false;
  bool anchored_end_ = false;
};

}  // namespace ranomaly::bgp
