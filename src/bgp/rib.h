// Routing Information Bases.
//
// AdjRibIn stores the routes heard from one peer; this is exactly the
// structure REX maintains per iBGP peer to recover withdrawn attributes
// (paper Section II).  LocRib stores, per prefix, all candidate routes
// across peers and runs the decision process to pick a best path.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/prefix.h"

namespace ranomaly::bgp {

// Routes heard from a single peer, keyed by prefix.
class AdjRibIn {
 public:
  // Installs/replaces a route.  Returns the previous attributes if the
  // announcement implicitly replaced an existing route (the "implicit
  // withdrawal" the paper's collector must recover).
  std::optional<PathAttributes> Announce(const Prefix& prefix,
                                         PathAttributes attrs);

  // Removes a route.  Returns its attributes — this is the augmentation
  // REX applies to plain BGP withdrawals.  nullopt if we never had it.
  std::optional<PathAttributes> Withdraw(const Prefix& prefix);

  const PathAttributes* Find(const Prefix& prefix) const;

  // Empties the table, returning everything that was in it.  This is what
  // happens on session loss: every route becomes an (augmented)
  // withdrawal.
  std::vector<std::pair<Prefix, PathAttributes>> Clear();

  std::size_t size() const { return routes_.size(); }
  bool empty() const { return routes_.empty(); }

  auto begin() const { return routes_.begin(); }
  auto end() const { return routes_.end(); }

 private:
  std::unordered_map<Prefix, PathAttributes, PrefixHash> routes_;
};

// A candidate route in the Loc-RIB: attributes plus where it came from.
struct RouteCandidate {
  Ipv4Addr peer;          // the BGP peer that sent it
  PathAttributes attrs;
  bool ebgp = true;       // learned over eBGP (vs iBGP)
  std::uint32_t peer_router_id = 0;  // final tiebreak

  friend bool operator==(const RouteCandidate&, const RouteCandidate&) = default;
};

// Decision-process configuration.  The MED flags model the real router
// knobs whose defaults create the RFC 3345 persistent oscillation the
// paper analyses in Section IV-F.
struct DecisionConfig {
  // Compare MED across different neighbor ASes too (Cisco
  // "bgp always-compare-med").  Default off, per the RFC.
  bool always_compare_med = false;
  // Order-independent MED evaluation (Cisco "bgp deterministic-med").
  // Default off: routes are compared pairwise in table order, which is
  // what makes best-path selection order-dependent and oscillatory.
  bool deterministic_med = false;
  // Missing MED treated as best (0) — the RFC default — rather than worst.
  bool missing_med_as_best = true;
  // IGP cost to a BGP nexthop ("hot potato"); defaults to 0 for all.
  std::function<std::uint32_t(Ipv4Addr)> igp_cost;
};

// Pairwise comparison used by the decision process *excluding* the MED
// step (MED is only meaningful within a neighbor-AS group).  Returns
// negative if a is better, positive if b is better, 0 if tied.
int CompareIgnoringMed(const RouteCandidate& a, const RouteCandidate& b,
                       const DecisionConfig& config);

// MED comparison between two routes from the same neighbor AS (or any two
// routes under always_compare_med).  Negative if a is better.
int CompareMed(const RouteCandidate& a, const RouteCandidate& b,
               const DecisionConfig& config);

// Full best-path selection over a candidate list.
//
// With deterministic_med=false this reproduces the classic sequential
// elimination: candidates are scanned in order, each compared against the
// current best; MED applies only when both share a neighbor AS.  The
// outcome can depend on candidate order — deliberately, because that lack
// of total order is the root cause of persistent MED oscillation.
// Returns index into `candidates`, or nullopt if empty.
std::optional<std::size_t> SelectBest(
    const std::vector<RouteCandidate>& candidates,
    const DecisionConfig& config);

// The change produced by a Loc-RIB update.
struct BestPathChange {
  std::optional<RouteCandidate> old_best;
  std::optional<RouteCandidate> new_best;
  bool Changed() const { return old_best != new_best; }
};

// Per-prefix candidate table + best path cache.
class LocRib {
 public:
  explicit LocRib(DecisionConfig config = {});

  // Announce (attrs set) or withdraw (attrs nullopt) from a peer.
  // Recomputes and returns the best-path change for the prefix.
  BestPathChange Update(Ipv4Addr peer, const Prefix& prefix,
                        std::optional<RouteCandidate> route);

  // Re-runs best-path selection on every prefix without any route change
  // — what a router's BGP scanner does after an IGP event ("hot potato"
  // re-evaluation).  Returns the prefixes whose best changed.
  std::vector<std::pair<Prefix, BestPathChange>> ReselectAll();

  const RouteCandidate* Best(const Prefix& prefix) const;
  const std::vector<RouteCandidate>* Candidates(const Prefix& prefix) const;

  std::size_t PrefixCount() const { return table_.size(); }
  std::size_t RouteCount() const { return route_count_; }

  // Iterates (prefix, candidates, best index).
  void ForEach(const std::function<void(const Prefix&,
                                        const std::vector<RouteCandidate>&,
                                        std::optional<std::size_t>)>& fn) const;

  const DecisionConfig& config() const { return config_; }

 private:
  struct Entry {
    std::vector<RouteCandidate> candidates;
    std::optional<std::size_t> best;
  };

  DecisionConfig config_;
  std::unordered_map<Prefix, Entry, PrefixHash> table_;
  std::size_t route_count_ = 0;
};

}  // namespace ranomaly::bgp
