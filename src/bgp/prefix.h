// IPv4 addresses, prefixes, and a binary radix trie for longest-prefix
// match.  The paper's data is entirely IPv4 (2002-2003 era); everything
// fits in 32-bit words.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ranomaly::bgp {

// An IPv4 address as a host-order 32-bit integer.
class Ipv4Addr {
 public:
  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t value) : value_(value) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : value_((std::uint32_t{a} << 24) | (std::uint32_t{b} << 16) |
               (std::uint32_t{c} << 8) | std::uint32_t{d}) {}

  constexpr std::uint32_t value() const { return value_; }

  std::string ToString() const;

  // Parses dotted-quad "a.b.c.d"; rejects anything else.
  static std::optional<Ipv4Addr> Parse(std::string_view s);

  friend constexpr auto operator<=>(Ipv4Addr, Ipv4Addr) = default;

 private:
  std::uint32_t value_ = 0;
};

// A CIDR prefix: network address + mask length.  The network address is
// always stored masked (host bits zero), so equal prefixes compare equal.
class Prefix {
 public:
  constexpr Prefix() = default;
  Prefix(Ipv4Addr addr, std::uint8_t len);

  Ipv4Addr addr() const { return addr_; }
  std::uint8_t length() const { return len_; }

  // True iff `ip` falls inside this prefix.
  bool Contains(Ipv4Addr ip) const;
  // True iff `other` is equal to or more specific than this prefix.
  bool Covers(const Prefix& other) const;

  std::string ToString() const;  // "a.b.c.d/len"

  // Parses "a.b.c.d/len"; host bits are masked off.
  static std::optional<Prefix> Parse(std::string_view s);

  friend auto operator<=>(const Prefix& a, const Prefix& b) = default;

 private:
  Ipv4Addr addr_;
  std::uint8_t len_ = 0;
};

struct PrefixHash {
  std::size_t operator()(const Prefix& p) const {
    // Mix address and length; addresses are well distributed already.
    const std::uint64_t x =
        (std::uint64_t{p.addr().value()} << 8) | p.length();
    return std::hash<std::uint64_t>{}(x * 0x9e3779b97f4a7c15ULL);
  }
};

struct Ipv4Hash {
  std::size_t operator()(Ipv4Addr a) const {
    return std::hash<std::uint32_t>{}(a.value());
  }
};

// Binary radix trie mapping prefixes to values, with longest-prefix-match
// lookup.  Used by the traffic integration (map a flow's destination IP to
// its routing prefix) and by the hijack/leak analysis (find covering or
// covered prefixes).
template <typename V>
class PrefixTrie {
 public:
  // Inserts or replaces; returns true if the prefix was new.
  bool Insert(const Prefix& p, V value) {
    Node* n = &root_;
    for (std::uint8_t depth = 0; depth < p.length(); ++depth) {
      const int bit = Bit(p.addr(), depth);
      auto& child = n->child[bit];
      if (!child) child = std::make_unique<Node>();
      n = child.get();
    }
    const bool was_new = !n->value.has_value();
    n->value = std::move(value);
    if (was_new) ++size_;
    return was_new;
  }

  bool Erase(const Prefix& p) {
    Node* n = FindNode(p);
    if (n == nullptr || !n->value.has_value()) return false;
    n->value.reset();
    --size_;
    return true;
  }

  // Exact-match lookup.
  const V* Find(const Prefix& p) const {
    const Node* n = FindNode(p);
    return (n != nullptr && n->value.has_value()) ? &*n->value : nullptr;
  }

  // Longest-prefix match for a host address; returns the matched prefix
  // and value, or nullopt if nothing covers `ip`.
  std::optional<std::pair<Prefix, const V*>> Lookup(Ipv4Addr ip) const {
    const Node* n = &root_;
    const Node* best = root_.value.has_value() ? &root_ : nullptr;
    std::uint8_t best_len = 0;
    for (std::uint8_t depth = 0; depth < 32 && n != nullptr; ++depth) {
      const int bit = Bit(ip, depth);
      n = n->child[bit].get();
      if (n != nullptr && n->value.has_value()) {
        best = n;
        best_len = static_cast<std::uint8_t>(depth + 1);
      }
    }
    if (best == nullptr) return std::nullopt;
    return std::make_pair(Prefix(ip, best_len), &*best->value);
  }

  std::size_t size() const { return size_; }

 private:
  struct Node {
    std::optional<V> value;
    std::unique_ptr<Node> child[2];
  };

  static int Bit(Ipv4Addr a, std::uint8_t depth) {
    return (a.value() >> (31 - depth)) & 1u;
  }

  const Node* FindNode(const Prefix& p) const {
    const Node* n = &root_;
    for (std::uint8_t depth = 0; depth < p.length(); ++depth) {
      n = n->child[Bit(p.addr(), depth)].get();
      if (n == nullptr) return nullptr;
    }
    return n;
  }
  Node* FindNode(const Prefix& p) {
    return const_cast<Node*>(std::as_const(*this).FindNode(p));
  }

  Node root_;
  std::size_t size_ = 0;
};

}  // namespace ranomaly::bgp
