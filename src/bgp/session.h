// BGP session finite state machine (RFC 4271 Section 8, simplified to the
// states and transitions that matter for routing dynamics).
//
// The paper's case studies hinge on session behaviour: a reset forces the
// speaker to withdraw everything learned over the session and re-exchange
// full tables on re-establishment (Section I), and a max-prefix violation
// tears the session down (the ISP-A/ISP-B route-leak incident).
#pragma once

#include <cstdint>
#include <string>

#include "util/time.h"

namespace ranomaly::bgp {

enum class SessionState : std::uint8_t {
  kIdle,
  kConnect,
  kOpenSent,
  kOpenConfirm,
  kEstablished,
};

const char* ToString(SessionState state);

enum class SessionInput : std::uint8_t {
  kManualStart,
  kManualStop,
  kTcpConnected,
  kTcpFailed,
  kOpenReceived,
  kKeepaliveReceived,
  kUpdateReceived,
  kHoldTimerExpired,
  kNotificationReceived,  // includes max-prefix teardown
};

const char* ToString(SessionInput input);

// What the owner of the FSM must do after feeding it an input.
struct SessionActions {
  bool send_open = false;
  bool send_keepalive = false;
  bool send_notification = false;
  // Session just came up: exchange full tables (Adj-RIB-Out replay).
  bool session_established = false;
  // Session just went down: flush the peer's Adj-RIB-In, emit withdrawals
  // for everything learned from it, and propagate.
  bool session_dropped = false;
};

class SessionFsm {
 public:
  explicit SessionFsm(util::SimDuration hold_time = 90 * util::kSecond);

  // Feeds one input at simulated time `now`; returns required actions.
  SessionActions OnInput(SessionInput input, util::SimTime now);

  // True if the hold timer has expired by `now` (owner should then feed
  // kHoldTimerExpired).
  bool HoldTimerExpired(util::SimTime now) const;

  SessionState state() const { return state_; }
  util::SimDuration hold_time() const { return hold_time_; }
  util::SimTime last_keepalive() const { return last_keepalive_; }

  // Diagnostics: how many times the session has been (re-)established and
  // dropped.  The Section IV-E customer session flaps once a minute; these
  // counters are how the workload asserts that.
  std::uint64_t times_established() const { return times_established_; }
  std::uint64_t times_dropped() const { return times_dropped_; }

 private:
  SessionActions Drop();

  SessionState state_ = SessionState::kIdle;
  util::SimDuration hold_time_;
  util::SimTime last_keepalive_ = 0;
  std::uint64_t times_established_ = 0;
  std::uint64_t times_dropped_ = 0;
};

}  // namespace ranomaly::bgp
