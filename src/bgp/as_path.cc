#include "bgp/as_path.h"

#include <algorithm>
#include <unordered_set>

#include "util/strings.h"

namespace ranomaly::bgp {

std::optional<AsNumber> AsPath::FirstHop() const {
  if (asns_.empty()) return std::nullopt;
  return asns_.front();
}

std::optional<AsNumber> AsPath::Origin() const {
  if (asns_.empty()) return std::nullopt;
  return asns_.back();
}

bool AsPath::Contains(AsNumber asn) const {
  return std::find(asns_.begin(), asns_.end(), asn) != asns_.end();
}

AsPath AsPath::Prepend(AsNumber asn, std::size_t count) const {
  std::vector<AsNumber> out;
  out.reserve(asns_.size() + count);
  out.insert(out.end(), count, asn);
  out.insert(out.end(), asns_.begin(), asns_.end());
  return AsPath(std::move(out));
}

bool AsPath::HasLoop() const {
  std::unordered_set<AsNumber> seen;
  for (AsNumber a : asns_) {
    if (!seen.insert(a).second) return true;
  }
  return false;
}

std::string AsPath::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < asns_.size(); ++i) {
    if (i != 0) out += ' ';
    out += std::to_string(asns_[i]);
  }
  return out;
}

std::optional<AsPath> AsPath::Parse(std::string_view s) {
  std::vector<AsNumber> asns;
  for (const auto tok : util::SplitWhitespace(s)) {
    AsNumber a = 0;
    if (!util::ParseU32(tok, a)) return std::nullopt;
    asns.push_back(a);
  }
  return AsPath(std::move(asns));
}

std::string Community::ToString() const {
  return std::to_string(asn()) + ":" + std::to_string(value());
}

std::optional<Community> Community::Parse(std::string_view s) {
  const auto colon = s.find(':');
  if (colon == std::string_view::npos) return std::nullopt;
  std::uint32_t a = 0;
  std::uint32_t v = 0;
  if (!util::ParseU32(s.substr(0, colon), a) ||
      !util::ParseU32(s.substr(colon + 1), v) || a > 0xffff || v > 0xffff) {
    return std::nullopt;
  }
  return Community(static_cast<std::uint16_t>(a),
                   static_cast<std::uint16_t>(v));
}

CommunitySet::CommunitySet(std::initializer_list<Community> init) {
  for (Community c : init) Add(c);
}

void CommunitySet::Add(Community c) {
  const auto it =
      std::lower_bound(communities_.begin(), communities_.end(), c);
  if (it != communities_.end() && *it == c) return;
  communities_.insert(it, c);
}

bool CommunitySet::Remove(Community c) {
  const auto it =
      std::lower_bound(communities_.begin(), communities_.end(), c);
  if (it == communities_.end() || *it != c) return false;
  communities_.erase(it);
  return true;
}

bool CommunitySet::Contains(Community c) const {
  return std::binary_search(communities_.begin(), communities_.end(), c);
}

std::string CommunitySet::ToString() const {
  std::string out;
  for (std::size_t i = 0; i < communities_.size(); ++i) {
    if (i != 0) out += ' ';
    out += communities_[i].ToString();
  }
  return out;
}

}  // namespace ranomaly::bgp
