#include "bgp/codec.h"

#include <cstring>
#include <stdexcept>

namespace ranomaly::bgp {
namespace {

constexpr std::size_t kHeaderSize = 19;
constexpr std::size_t kMarkerSize = 16;
constexpr std::size_t kMaxMessageSize = 4096;

// Attribute type codes (RFC 4271 / RFC 1997).
constexpr std::uint8_t kAttrOrigin = 1;
constexpr std::uint8_t kAttrAsPath = 2;
constexpr std::uint8_t kAttrNexthop = 3;
constexpr std::uint8_t kAttrMed = 4;
constexpr std::uint8_t kAttrLocalPref = 5;
constexpr std::uint8_t kAttrCommunities = 8;

// Attribute flag bits.
constexpr std::uint8_t kFlagOptional = 0x80;
constexpr std::uint8_t kFlagTransitive = 0x40;
constexpr std::uint8_t kFlagExtendedLength = 0x10;

constexpr std::uint8_t kSegmentAsSequence = 2;

void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 8));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  out.push_back(static_cast<std::uint8_t>(v >> 24));
  out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xff));
  out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
  out.push_back(static_cast<std::uint8_t>(v & 0xff));
}

void PutPrefix(std::vector<std::uint8_t>& out, const Prefix& p) {
  out.push_back(p.length());
  const std::uint32_t a = p.addr().value();
  const int bytes = (p.length() + 7) / 8;
  for (int i = 0; i < bytes; ++i) {
    out.push_back(static_cast<std::uint8_t>((a >> (24 - 8 * i)) & 0xff));
  }
}

// One attribute with computed flags and (possibly extended) length.
void PutAttr(std::vector<std::uint8_t>& out, std::uint8_t flags,
             std::uint8_t type, const std::vector<std::uint8_t>& value) {
  if (value.size() > 255) flags |= kFlagExtendedLength;
  out.push_back(flags);
  out.push_back(type);
  if (flags & kFlagExtendedLength) {
    PutU16(out, static_cast<std::uint16_t>(value.size()));
  } else {
    out.push_back(static_cast<std::uint8_t>(value.size()));
  }
  out.insert(out.end(), value.begin(), value.end());
}

std::vector<std::uint8_t> EncodeAttributes(const PathAttributes& attrs) {
  std::vector<std::uint8_t> out;

  {  // ORIGIN
    std::vector<std::uint8_t> v{static_cast<std::uint8_t>(attrs.origin)};
    PutAttr(out, kFlagTransitive, kAttrOrigin, v);
  }
  {  // AS_PATH: one AS_SEQUENCE segment (possibly empty path => no segment)
    std::vector<std::uint8_t> v;
    if (!attrs.as_path.Empty()) {
      if (attrs.as_path.Length() > 255) {
        throw std::invalid_argument("EncodeUpdate: AS path too long");
      }
      v.push_back(kSegmentAsSequence);
      v.push_back(static_cast<std::uint8_t>(attrs.as_path.Length()));
      for (AsNumber a : attrs.as_path.asns()) {
        if (a > 0xffff) {
          throw std::invalid_argument("EncodeUpdate: ASN exceeds 2 octets");
        }
        PutU16(v, static_cast<std::uint16_t>(a));
      }
    }
    PutAttr(out, kFlagTransitive, kAttrAsPath, v);
  }
  {  // NEXT_HOP
    std::vector<std::uint8_t> v;
    PutU32(v, attrs.nexthop.value());
    PutAttr(out, kFlagTransitive, kAttrNexthop, v);
  }
  if (attrs.med) {
    std::vector<std::uint8_t> v;
    PutU32(v, *attrs.med);
    PutAttr(out, kFlagOptional, kAttrMed, v);
  }
  {  // LOCAL_PREF
    std::vector<std::uint8_t> v;
    PutU32(v, attrs.local_pref);
    PutAttr(out, kFlagTransitive, kAttrLocalPref, v);
  }
  if (!attrs.communities.empty()) {
    std::vector<std::uint8_t> v;
    for (Community c : attrs.communities) PutU32(v, c.raw());
    PutAttr(out, kFlagOptional | kFlagTransitive, kAttrCommunities, v);
  }
  return out;
}

std::vector<std::uint8_t> EncodeWithHeader(MessageType type,
                                           const std::vector<std::uint8_t>& body) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + body.size());
  out.insert(out.end(), kMarkerSize, 0xff);
  const std::size_t total = kHeaderSize + body.size();
  if (total > kMaxMessageSize) {
    throw std::invalid_argument("EncodeUpdate: message exceeds 4096 bytes");
  }
  PutU16(out, static_cast<std::uint16_t>(total));
  out.push_back(static_cast<std::uint8_t>(type));
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

// --- decoding ---

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  bool ReadU8(std::uint8_t& v) {
    if (pos_ + 1 > size_) return false;
    v = data_[pos_++];
    return true;
  }
  bool ReadU16(std::uint16_t& v) {
    if (pos_ + 2 > size_) return false;
    v = static_cast<std::uint16_t>((data_[pos_] << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return true;
  }
  bool ReadU32(std::uint32_t& v) {
    if (pos_ + 4 > size_) return false;
    v = (std::uint32_t{data_[pos_]} << 24) |
        (std::uint32_t{data_[pos_ + 1]} << 16) |
        (std::uint32_t{data_[pos_ + 2]} << 8) | std::uint32_t{data_[pos_ + 3]};
    pos_ += 4;
    return true;
  }

  bool ReadPrefix(Prefix& p) {
    std::uint8_t len = 0;
    if (!ReadU8(len) || len > 32) return false;
    const int bytes = (len + 7) / 8;
    if (pos_ + static_cast<std::size_t>(bytes) > size_) return false;
    std::uint32_t a = 0;
    for (int i = 0; i < bytes; ++i) {
      a |= std::uint32_t{data_[pos_ + static_cast<std::size_t>(i)]}
           << (24 - 8 * i);
    }
    pos_ += static_cast<std::size_t>(bytes);
    p = Prefix(Ipv4Addr(a), len);
    return true;
  }

  std::size_t remaining() const { return size_ - pos_; }
  std::size_t pos() const { return pos_; }

  // Repositions within the buffer (used to skip a malformed attribute
  // block whose total length is known from the message framing).
  void Seek(std::size_t pos) { pos_ = pos <= size_ ? pos : size_; }

 private:
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

bool DecodeAttributes(Reader& r, std::size_t attr_len, PathAttributes& attrs,
                      bool& saw_nexthop) {
  const std::size_t end = r.pos() + attr_len;
  saw_nexthop = false;
  while (r.pos() < end) {
    std::uint8_t flags = 0;
    std::uint8_t type = 0;
    if (!r.ReadU8(flags) || !r.ReadU8(type)) return false;
    std::size_t len = 0;
    if (flags & kFlagExtendedLength) {
      std::uint16_t l = 0;
      if (!r.ReadU16(l)) return false;
      len = l;
    } else {
      std::uint8_t l = 0;
      if (!r.ReadU8(l)) return false;
      len = l;
    }
    if (r.pos() + len > end) return false;
    const std::size_t value_end = r.pos() + len;

    switch (type) {
      case kAttrOrigin: {
        std::uint8_t o = 0;
        if (len != 1 || !r.ReadU8(o) || o > 2) return false;
        attrs.origin = static_cast<Origin>(o);
        break;
      }
      case kAttrAsPath: {
        std::vector<AsNumber> asns;
        while (r.pos() < value_end) {
          std::uint8_t seg_type = 0;
          std::uint8_t count = 0;
          if (!r.ReadU8(seg_type) || !r.ReadU8(count)) return false;
          if (seg_type != kSegmentAsSequence) return false;  // AS_SET unmodeled
          for (std::uint8_t i = 0; i < count; ++i) {
            std::uint16_t a = 0;
            if (!r.ReadU16(a)) return false;
            asns.push_back(a);
          }
        }
        attrs.as_path = AsPath(std::move(asns));
        break;
      }
      case kAttrNexthop: {
        std::uint32_t v = 0;
        if (len != 4 || !r.ReadU32(v)) return false;
        attrs.nexthop = Ipv4Addr(v);
        saw_nexthop = true;
        break;
      }
      case kAttrMed: {
        std::uint32_t v = 0;
        if (len != 4 || !r.ReadU32(v)) return false;
        attrs.med = v;
        break;
      }
      case kAttrLocalPref: {
        std::uint32_t v = 0;
        if (len != 4 || !r.ReadU32(v)) return false;
        attrs.local_pref = v;
        break;
      }
      case kAttrCommunities: {
        if (len % 4 != 0) return false;
        for (std::size_t i = 0; i < len / 4; ++i) {
          std::uint32_t v = 0;
          if (!r.ReadU32(v)) return false;
          attrs.communities.Add(Community(v));
        }
        break;
      }
      default: {
        // Unknown optional attribute: skip.  Unknown well-known: error.
        if (!(flags & kFlagOptional)) return false;
        std::uint8_t dummy = 0;
        for (std::size_t i = 0; i < len; ++i) {
          if (!r.ReadU8(dummy)) return false;
        }
        break;
      }
    }
    if (r.pos() != value_end) return false;  // attribute length mismatch
  }
  return r.pos() == end;
}

}  // namespace

std::vector<std::uint8_t> EncodeUpdate(const UpdateMessage& update) {
  if (!update.nlri.empty() && !update.attrs) {
    throw std::invalid_argument("EncodeUpdate: NLRI without path attributes");
  }

  std::vector<std::uint8_t> body;

  std::vector<std::uint8_t> withdrawn;
  for (const Prefix& p : update.withdrawn) PutPrefix(withdrawn, p);
  PutU16(body, static_cast<std::uint16_t>(withdrawn.size()));
  body.insert(body.end(), withdrawn.begin(), withdrawn.end());

  std::vector<std::uint8_t> attrs;
  if (update.attrs) attrs = EncodeAttributes(*update.attrs);
  PutU16(body, static_cast<std::uint16_t>(attrs.size()));
  body.insert(body.end(), attrs.begin(), attrs.end());

  for (const Prefix& p : update.nlri) PutPrefix(body, p);

  return EncodeWithHeader(MessageType::kUpdate, body);
}

std::vector<std::uint8_t> EncodeKeepalive() {
  return EncodeWithHeader(MessageType::kKeepalive, {});
}

const char* ToString(DecodeStatus status) {
  switch (status) {
    case DecodeStatus::kOk: return "ok";
    case DecodeStatus::kFramingError: return "framing-error";
    case DecodeStatus::kAttributeError: return "attribute-error";
  }
  return "?";
}

TolerantDecodeResult DecodeMessageTolerant(
    const std::vector<std::uint8_t>& wire) {
  TolerantDecodeResult out;  // defaults to kFramingError
  if (wire.size() < kHeaderSize) return out;
  for (std::size_t i = 0; i < kMarkerSize; ++i) {
    if (wire[i] != 0xff) return out;
  }
  const std::uint16_t total =
      static_cast<std::uint16_t>((wire[16] << 8) | wire[17]);
  if (total < kHeaderSize || total > kMaxMessageSize || total > wire.size()) {
    return out;
  }
  const std::uint8_t type = wire[18];
  DecodeResult& result = out.result;
  result.bytes_consumed = total;

  switch (type) {
    case 4:
      result.type = MessageType::kKeepalive;
      if (total == kHeaderSize) out.status = DecodeStatus::kOk;
      return out;
    case 1:
      result.type = MessageType::kOpen;
      out.status = DecodeStatus::kOk;
      return out;
    case 3:
      result.type = MessageType::kNotification;
      out.status = DecodeStatus::kOk;
      return out;
    case 2:
      break;
    default:
      return out;
  }

  result.type = MessageType::kUpdate;
  Reader r(wire.data() + kHeaderSize, total - kHeaderSize);

  std::uint16_t withdrawn_len = 0;
  if (!r.ReadU16(withdrawn_len)) return out;
  const std::size_t withdrawn_end = r.pos() + withdrawn_len;
  if (withdrawn_end > total - kHeaderSize) return out;
  while (r.pos() < withdrawn_end) {
    Prefix p;
    if (!r.ReadPrefix(p) || r.pos() > withdrawn_end) return out;
    result.update.withdrawn.push_back(p);
  }
  if (r.pos() != withdrawn_end) return out;

  std::uint16_t attr_len = 0;
  if (!r.ReadU16(attr_len)) return out;
  if (r.pos() + attr_len > total - kHeaderSize) return out;
  const std::size_t attrs_end = r.pos() + attr_len;
  bool attrs_malformed = false;
  bool saw_nexthop = false;
  if (attr_len > 0) {
    PathAttributes attrs;
    if (DecodeAttributes(r, attr_len, attrs, saw_nexthop)) {
      result.update.attrs = std::move(attrs);
    } else {
      // The framing tells us exactly where the attribute block ends, so a
      // malformed attribute set does not cost us the NLRI: skip to the end
      // of the block and salvage the announced prefixes for
      // treat-as-withdraw (RFC 7606 Section 2).
      attrs_malformed = true;
      r.Seek(attrs_end);
    }
  }

  while (r.remaining() > 0) {
    Prefix p;
    if (!r.ReadPrefix(p)) return out;
    result.update.nlri.push_back(p);
  }
  if (!result.update.nlri.empty() && (attrs_malformed || !result.update.attrs ||
                                      !saw_nexthop)) {
    // Missing or malformed attributes for announced routes: the session
    // survives but the routes must be treated as withdrawn.
    result.update.attrs.reset();
    out.status = DecodeStatus::kAttributeError;
    return out;
  }
  if (attrs_malformed) {
    // Withdraw-only (or empty) update with a bad attribute block tacked
    // on: the withdrawals themselves are sound.
    result.update.attrs.reset();
    out.status = DecodeStatus::kAttributeError;
    return out;
  }
  out.status = DecodeStatus::kOk;
  return out;
}

std::optional<DecodeResult> DecodeMessage(
    const std::vector<std::uint8_t>& wire) {
  TolerantDecodeResult tolerant = DecodeMessageTolerant(wire);
  if (tolerant.status != DecodeStatus::kOk) return std::nullopt;
  return std::move(tolerant.result);
}

}  // namespace ranomaly::bgp
