#include "bgp/attributes.h"

#include "util/strings.h"

namespace ranomaly::bgp {

const char* ToString(Origin origin) {
  switch (origin) {
    case Origin::kIgp: return "IGP";
    case Origin::kEgp: return "EGP";
    case Origin::kIncomplete: return "INCOMPLETE";
  }
  return "?";
}

const char* ToString(EventType type) {
  switch (type) {
    case EventType::kAnnounce: return "A";
    case EventType::kWithdraw: return "W";
    case EventType::kFeedGap: return "GAP";
    case EventType::kResync: return "SYNC";
  }
  return "?";
}

std::string PathAttributes::ToString() const {
  std::string out = "NEXT_HOP: " + nexthop.ToString() +
                    " ASPATH: " + as_path.ToString();
  if (local_pref != kDefaultLocalPref) {
    out += " LOCALPREF: " + std::to_string(local_pref);
  }
  if (med) out += " MED: " + std::to_string(*med);
  if (!communities.empty()) out += " COMMUNITY: " + communities.ToString();
  return out;
}

std::string Event::ToString() const {
  std::string out = bgp::ToString(type);
  out += ' ';
  out += peer.ToString();
  if (IsMarker(type)) return out;  // markers carry only the peer
  out += " NEXT_HOP: " + attrs.nexthop.ToString();
  out += " ASPATH: " + attrs.as_path.ToString();
  if (!attrs.communities.empty()) {
    out += " COMMUNITY: " + attrs.communities.ToString();
  }
  out += " PREFIX: " + prefix.ToString();
  return out;
}

std::optional<Event> Event::Parse(std::string_view line) {
  const auto tokens = util::SplitWhitespace(line);
  if (tokens.size() < 2) return std::nullopt;

  Event e;
  if (tokens[0] == "A") {
    e.type = EventType::kAnnounce;
  } else if (tokens[0] == "W") {
    e.type = EventType::kWithdraw;
  } else if (tokens[0] == "GAP") {
    e.type = EventType::kFeedGap;
  } else if (tokens[0] == "SYNC") {
    e.type = EventType::kResync;
  } else {
    return std::nullopt;
  }

  const auto peer = Ipv4Addr::Parse(tokens[1]);
  if (!peer) return std::nullopt;
  e.peer = *peer;

  if (IsMarker(e.type)) {
    return tokens.size() == 2 ? std::optional(e) : std::nullopt;
  }
  if (tokens.size() < 7) return std::nullopt;

  // Scan labeled sections: NEXT_HOP:, ASPATH:, COMMUNITY:, PREFIX:.
  std::size_t i = 2;
  auto expect_label = [&](std::string_view label) {
    if (i < tokens.size() && tokens[i] == label) {
      ++i;
      return true;
    }
    return false;
  };

  if (!expect_label("NEXT_HOP:")) return std::nullopt;
  if (i >= tokens.size()) return std::nullopt;
  const auto nh = Ipv4Addr::Parse(tokens[i++]);
  if (!nh) return std::nullopt;
  e.attrs.nexthop = *nh;

  if (!expect_label("ASPATH:")) return std::nullopt;
  std::vector<AsNumber> asns;
  while (i < tokens.size() && tokens[i] != "COMMUNITY:" &&
         tokens[i] != "PREFIX:") {
    AsNumber a = 0;
    if (!util::ParseU32(tokens[i], a)) return std::nullopt;
    asns.push_back(a);
    ++i;
  }
  e.attrs.as_path = AsPath(std::move(asns));

  if (expect_label("COMMUNITY:")) {
    while (i < tokens.size() && tokens[i] != "PREFIX:") {
      const auto c = Community::Parse(tokens[i]);
      if (!c) return std::nullopt;
      e.attrs.communities.Add(*c);
      ++i;
    }
  }

  if (!expect_label("PREFIX:")) return std::nullopt;
  if (i >= tokens.size()) return std::nullopt;
  const auto p = Prefix::Parse(tokens[i]);
  if (!p) return std::nullopt;
  e.prefix = *p;
  return e;
}

}  // namespace ranomaly::bgp
