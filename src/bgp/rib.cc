#include "bgp/rib.h"

#include <algorithm>

namespace ranomaly::bgp {

std::optional<PathAttributes> AdjRibIn::Announce(const Prefix& prefix,
                                                 PathAttributes attrs) {
  auto [it, inserted] = routes_.try_emplace(prefix, std::move(attrs));
  if (inserted) return std::nullopt;
  PathAttributes old = std::move(it->second);
  it->second = std::move(attrs);
  return old;
}

std::optional<PathAttributes> AdjRibIn::Withdraw(const Prefix& prefix) {
  const auto it = routes_.find(prefix);
  if (it == routes_.end()) return std::nullopt;
  PathAttributes old = std::move(it->second);
  routes_.erase(it);
  return old;
}

const PathAttributes* AdjRibIn::Find(const Prefix& prefix) const {
  const auto it = routes_.find(prefix);
  return it == routes_.end() ? nullptr : &it->second;
}

std::vector<std::pair<Prefix, PathAttributes>> AdjRibIn::Clear() {
  std::vector<std::pair<Prefix, PathAttributes>> out;
  out.reserve(routes_.size());
  for (auto& [prefix, attrs] : routes_) {
    out.emplace_back(prefix, std::move(attrs));
  }
  routes_.clear();
  return out;
}

namespace {

std::uint32_t IgpCost(const DecisionConfig& config, Ipv4Addr nexthop) {
  return config.igp_cost ? config.igp_cost(nexthop) : 0;
}

std::uint32_t EffectiveMed(const RouteCandidate& r,
                           const DecisionConfig& config) {
  if (r.attrs.med) return *r.attrs.med;
  return config.missing_med_as_best ? 0u : 0xffffffffu;
}

}  // namespace

int CompareIgnoringMed(const RouteCandidate& a, const RouteCandidate& b,
                       const DecisionConfig& config) {
  // 1. Highest LOCAL_PREF.
  if (a.attrs.local_pref != b.attrs.local_pref) {
    return a.attrs.local_pref > b.attrs.local_pref ? -1 : 1;
  }
  // 2. Shortest AS path.
  if (a.attrs.as_path.Length() != b.attrs.as_path.Length()) {
    return a.attrs.as_path.Length() < b.attrs.as_path.Length() ? -1 : 1;
  }
  // 3. Lowest origin (IGP < EGP < INCOMPLETE).
  if (a.attrs.origin != b.attrs.origin) {
    return static_cast<int>(a.attrs.origin) < static_cast<int>(b.attrs.origin)
               ? -1
               : 1;
  }
  // (4. MED — handled by the caller, because it only applies within a
  //  neighbor-AS group.)
  // 5. eBGP over iBGP.
  if (a.ebgp != b.ebgp) return a.ebgp ? -1 : 1;
  // 6. Lowest IGP cost to nexthop (hot potato).
  const std::uint32_t ca = IgpCost(config, a.attrs.nexthop);
  const std::uint32_t cb = IgpCost(config, b.attrs.nexthop);
  if (ca != cb) return ca < cb ? -1 : 1;
  // 7. Lowest peer router id.
  if (a.peer_router_id != b.peer_router_id) {
    return a.peer_router_id < b.peer_router_id ? -1 : 1;
  }
  // 8. Lowest peer address.
  if (a.peer != b.peer) return a.peer < b.peer ? -1 : 1;
  return 0;
}

int CompareMed(const RouteCandidate& a, const RouteCandidate& b,
               const DecisionConfig& config) {
  const bool same_group = config.always_compare_med ||
                          (a.attrs.NeighborAs().has_value() &&
                           a.attrs.NeighborAs() == b.attrs.NeighborAs());
  if (!same_group) return 0;
  const std::uint32_t ma = EffectiveMed(a, config);
  const std::uint32_t mb = EffectiveMed(b, config);
  if (ma != mb) return ma < mb ? -1 : 1;
  return 0;
}

namespace {

// Full pairwise comparison in decision-process order.  LOCAL_PREF, path
// length and origin dominate; MED applies within a neighbor-AS group;
// then eBGP/IGP-cost/router-id break remaining ties.
int ComparePair(const RouteCandidate& a, const RouteCandidate& b,
                const DecisionConfig& config) {
  // Steps 1-3.
  if (a.attrs.local_pref != b.attrs.local_pref) {
    return a.attrs.local_pref > b.attrs.local_pref ? -1 : 1;
  }
  if (a.attrs.as_path.Length() != b.attrs.as_path.Length()) {
    return a.attrs.as_path.Length() < b.attrs.as_path.Length() ? -1 : 1;
  }
  if (a.attrs.origin != b.attrs.origin) {
    return static_cast<int>(a.attrs.origin) < static_cast<int>(b.attrs.origin)
               ? -1
               : 1;
  }
  // Step 4: MED.
  if (const int med = CompareMed(a, b, config); med != 0) return med;
  // Steps 5-8.
  if (a.ebgp != b.ebgp) return a.ebgp ? -1 : 1;
  const std::uint32_t ca = IgpCost(config, a.attrs.nexthop);
  const std::uint32_t cb = IgpCost(config, b.attrs.nexthop);
  if (ca != cb) return ca < cb ? -1 : 1;
  if (a.peer_router_id != b.peer_router_id) {
    return a.peer_router_id < b.peer_router_id ? -1 : 1;
  }
  if (a.peer != b.peer) return a.peer < b.peer ? -1 : 1;
  return 0;
}

// Order-dependent sequential elimination (Cisco pre-deterministic-med
// behaviour): scan candidates in order, keeping a running winner.
// Because MED comparisons only apply within a neighbor-AS group, the
// "better-than" relation is not transitive and the scan order matters.
std::optional<std::size_t> SelectSequential(
    const std::vector<RouteCandidate>& candidates,
    const DecisionConfig& config) {
  if (candidates.empty()) return std::nullopt;
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    if (ComparePair(candidates[i], candidates[best], config) < 0) best = i;
  }
  return best;
}

// Order-independent selection ("bgp deterministic-med"): group candidates
// by neighbor AS, pick each group's MED winner, then compare the group
// winners without MED.
std::optional<std::size_t> SelectDeterministic(
    const std::vector<RouteCandidate>& candidates,
    const DecisionConfig& config) {
  if (candidates.empty()) return std::nullopt;

  // Map neighbor AS -> index of that group's current winner.
  std::vector<std::pair<std::optional<AsNumber>, std::size_t>> groups;
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    const auto nas = candidates[i].attrs.NeighborAs();
    auto it = std::find_if(groups.begin(), groups.end(),
                           [&](const auto& g) { return g.first == nas; });
    if (it == groups.end()) {
      groups.emplace_back(nas, i);
      continue;
    }
    const auto& incumbent = candidates[it->second];
    const auto& challenger = candidates[i];
    int cmp = CompareMed(challenger, incumbent, config);
    if (cmp == 0) cmp = CompareIgnoringMed(challenger, incumbent, config);
    if (cmp < 0) it->second = i;
  }

  std::size_t best = groups.front().second;
  for (std::size_t g = 1; g < groups.size(); ++g) {
    const std::size_t i = groups[g].second;
    int cmp = CompareIgnoringMed(candidates[i], candidates[best], config);
    if (cmp == 0 && config.always_compare_med) {
      cmp = CompareMed(candidates[i], candidates[best], config);
    }
    if (cmp < 0) best = i;
  }
  return best;
}

}  // namespace

std::optional<std::size_t> SelectBest(
    const std::vector<RouteCandidate>& candidates,
    const DecisionConfig& config) {
  return config.deterministic_med ? SelectDeterministic(candidates, config)
                                  : SelectSequential(candidates, config);
}

LocRib::LocRib(DecisionConfig config) : config_(std::move(config)) {}

BestPathChange LocRib::Update(Ipv4Addr peer, const Prefix& prefix,
                              std::optional<RouteCandidate> route) {
  auto& entry = table_[prefix];
  BestPathChange change;
  if (entry.best) change.old_best = entry.candidates[*entry.best];

  const auto it = std::find_if(
      entry.candidates.begin(), entry.candidates.end(),
      [&](const RouteCandidate& c) { return c.peer == peer; });

  if (route) {
    route->peer = peer;
    if (it == entry.candidates.end()) {
      entry.candidates.push_back(std::move(*route));
      ++route_count_;
    } else {
      *it = std::move(*route);
    }
  } else if (it != entry.candidates.end()) {
    entry.candidates.erase(it);
    --route_count_;
  }

  if (entry.candidates.empty()) {
    table_.erase(prefix);
    change.new_best = std::nullopt;
    return change;
  }

  entry.best = SelectBest(entry.candidates, config_);
  if (entry.best) change.new_best = entry.candidates[*entry.best];
  return change;
}

std::vector<std::pair<Prefix, BestPathChange>> LocRib::ReselectAll() {
  std::vector<std::pair<Prefix, BestPathChange>> changed;
  for (auto& [prefix, entry] : table_) {
    BestPathChange change;
    if (entry.best) change.old_best = entry.candidates[*entry.best];
    entry.best = SelectBest(entry.candidates, config_);
    if (entry.best) change.new_best = entry.candidates[*entry.best];
    if (change.Changed()) changed.emplace_back(prefix, std::move(change));
  }
  return changed;
}

const RouteCandidate* LocRib::Best(const Prefix& prefix) const {
  const auto it = table_.find(prefix);
  if (it == table_.end() || !it->second.best) return nullptr;
  return &it->second.candidates[*it->second.best];
}

const std::vector<RouteCandidate>* LocRib::Candidates(
    const Prefix& prefix) const {
  const auto it = table_.find(prefix);
  return it == table_.end() ? nullptr : &it->second.candidates;
}

void LocRib::ForEach(
    const std::function<void(const Prefix&, const std::vector<RouteCandidate>&,
                             std::optional<std::size_t>)>& fn) const {
  for (const auto& [prefix, entry] : table_) {
    fn(prefix, entry.candidates, entry.best);
  }
}

}  // namespace ranomaly::bgp
