// AS numbers, AS paths and BGP communities.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace ranomaly::bgp {

using AsNumber = std::uint32_t;

// An AS_PATH as the ordered list of ASes from the receiving edge outward
// to the originator (AS_SEQUENCE semantics; we do not model AS_SET, which
// was already rare in the paper's era and is deprecated today).
class AsPath {
 public:
  AsPath() = default;
  AsPath(std::initializer_list<AsNumber> init) : asns_(init) {}
  explicit AsPath(std::vector<AsNumber> asns) : asns_(std::move(asns)) {}

  const std::vector<AsNumber>& asns() const { return asns_; }
  std::size_t Length() const { return asns_.size(); }
  bool Empty() const { return asns_.empty(); }

  // The AS adjacent to the receiver (first hop), or nullopt if empty.
  std::optional<AsNumber> FirstHop() const;
  // The originating AS (last element), or nullopt if empty.
  std::optional<AsNumber> Origin() const;

  bool Contains(AsNumber asn) const;

  // Returns a new path with `asn` prepended `count` times (what a router
  // does when exporting over eBGP, and the knob behind AS-path prepending
  // policies).
  AsPath Prepend(AsNumber asn, std::size_t count = 1) const;

  // True if any AS appears more than once: BGP's loop-prevention check.
  bool HasLoop() const;

  std::string ToString() const;  // "11423 209 701"
  static std::optional<AsPath> Parse(std::string_view s);

  friend bool operator==(const AsPath&, const AsPath&) = default;

 private:
  std::vector<AsNumber> asns_;
};

struct AsPathHash {
  std::size_t operator()(const AsPath& p) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (AsNumber a : p.asns()) {
      h ^= a;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

// A classic (RFC 1997) community: 16-bit AS + 16-bit value, e.g. the
// paper's 11423:65350 (CalREN's "ISP route" tag) or 2152:65297 (CENIC's
// Los Nettos tag).
class Community {
 public:
  constexpr Community() = default;
  constexpr explicit Community(std::uint32_t raw) : raw_(raw) {}
  constexpr Community(std::uint16_t asn, std::uint16_t value)
      : raw_((std::uint32_t{asn} << 16) | value) {}

  constexpr std::uint32_t raw() const { return raw_; }
  constexpr std::uint16_t asn() const {
    return static_cast<std::uint16_t>(raw_ >> 16);
  }
  constexpr std::uint16_t value() const {
    return static_cast<std::uint16_t>(raw_ & 0xffff);
  }

  std::string ToString() const;  // "11423:65350"
  static std::optional<Community> Parse(std::string_view s);

  friend constexpr auto operator<=>(Community, Community) = default;

 private:
  std::uint32_t raw_ = 0;
};

// A sorted, duplicate-free set of communities attached to a route.
class CommunitySet {
 public:
  CommunitySet() = default;
  CommunitySet(std::initializer_list<Community> init);

  void Add(Community c);
  bool Remove(Community c);
  bool Contains(Community c) const;

  std::size_t size() const { return communities_.size(); }
  bool empty() const { return communities_.empty(); }
  auto begin() const { return communities_.begin(); }
  auto end() const { return communities_.end(); }

  std::string ToString() const;  // "11423:65350 2152:65297"

  friend bool operator==(const CommunitySet&, const CommunitySet&) = default;

 private:
  std::vector<Community> communities_;
};

}  // namespace ranomaly::bgp
