#include "util/log.h"

#include <cstdio>
#include <mutex>

namespace ranomaly::util {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::mutex g_mu;
LogSink g_sink;  // empty => default stderr sink
LogLevel g_min_level = LogLevel::kWarn;

}  // namespace

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mu);
  LogSink prev = std::move(g_sink);
  g_sink = std::move(sink);
  return prev;
}

void SetLogLevel(LogLevel min_level) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_min_level = min_level;
}

LogLevel GetLogLevel() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_min_level;
}

namespace {
std::atomic<std::uint64_t> g_suppressed_lines{0};
}  // namespace

namespace detail {

bool ShouldLogEveryN(std::atomic<std::uint64_t>& seen,
                     std::atomic<std::uint64_t>& last_logged,
                     std::uint64_t every_n, std::uint64_t& suppressed) {
  const std::uint64_t n = seen.fetch_add(1, std::memory_order_relaxed) + 1;
  if (every_n == 0) every_n = 1;
  if (n != 1 && n % every_n != 0) {
    g_suppressed_lines.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const std::uint64_t prev = last_logged.exchange(n, std::memory_order_relaxed);
  suppressed = n > prev ? n - prev - 1 : 0;
  return true;
}

}  // namespace detail

std::uint64_t SuppressedLogLines() {
  return g_suppressed_lines.load(std::memory_order_relaxed);
}

std::string WithSuppressedSuffix(std::string msg, std::uint64_t suppressed) {
  if (suppressed == 0) return msg;
  msg += " (";
  msg += std::to_string(suppressed);
  msg += " similar suppressed)";
  return msg;
}

void Log(LogLevel level, const std::string& message) {
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (static_cast<int>(level) < static_cast<int>(g_min_level)) return;
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

}  // namespace ranomaly::util
