#include "util/log.h"

#include <cstdio>
#include <mutex>

namespace ranomaly::util {
namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}

std::mutex g_mu;
LogSink g_sink;  // empty => default stderr sink
LogLevel g_min_level = LogLevel::kWarn;

}  // namespace

LogSink SetLogSink(LogSink sink) {
  std::lock_guard<std::mutex> lock(g_mu);
  LogSink prev = std::move(g_sink);
  g_sink = std::move(sink);
  return prev;
}

void SetLogLevel(LogLevel min_level) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_min_level = min_level;
}

LogLevel GetLogLevel() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_min_level;
}

void Log(LogLevel level, const std::string& message) {
  LogSink sink;
  {
    std::lock_guard<std::mutex> lock(g_mu);
    if (static_cast<int>(level) < static_cast<int>(g_min_level)) return;
    sink = g_sink;
  }
  if (sink) {
    sink(level, message);
  } else {
    std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
  }
}

}  // namespace ranomaly::util
