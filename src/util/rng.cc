#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ranomaly::util {
namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& s : s_) s = SplitMix64(x);
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::NextBelow(std::uint64_t bound) {
  if (bound == 0) throw std::invalid_argument("NextBelow: bound must be > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t threshold = -bound % bound;
  for (;;) {
    const std::uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

std::int64_t Rng::NextInRange(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("NextInRange: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(span == 0 ? Next() : NextBelow(span));
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p_true) { return NextDouble() < p_true; }

double Rng::NextExponential(double mean) {
  if (mean <= 0) throw std::invalid_argument("NextExponential: mean <= 0");
  double u = NextDouble();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

Rng Rng::Fork() { return Rng(Next()); }

ZipfSampler::ZipfSampler(std::size_t n, double alpha) {
  if (n == 0) throw std::invalid_argument("ZipfSampler: n must be > 0");
  cdf_.resize(n);
  double sum = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // exact, despite rounding
}

std::size_t ZipfSampler::Sample(Rng& rng) const {
  const double u = rng.NextDouble();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return static_cast<std::size_t>(it - cdf_.begin());
}

double ZipfSampler::Mass(std::size_t rank) const {
  if (rank >= cdf_.size()) throw std::out_of_range("ZipfSampler::Mass");
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

}  // namespace ranomaly::util
