#include "util/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ranomaly::util {

void RunningStats::Add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double Percentile(std::vector<double> sample, double p) {
  if (sample.empty()) throw std::invalid_argument("Percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("Percentile: p out of range");
  std::sort(sample.begin(), sample.end());
  const double idx = (p / 100.0) * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(idx);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = idx - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

RateSeries::RateSeries(SimTime start, SimDuration bucket_width)
    : start_(start), width_(bucket_width) {
  if (bucket_width <= 0) {
    throw std::invalid_argument("RateSeries: bucket_width must be > 0");
  }
}

void RateSeries::Add(SimTime t, std::uint64_t count) {
  std::size_t idx = 0;
  if (t < start_) {
    clamped_ += count;  // mis-stamped event: clamp into bucket 0
  } else {
    idx = static_cast<std::size_t>((t - start_) / width_);
  }
  if (idx >= buckets_.size()) buckets_.resize(idx + 1, 0);
  buckets_[idx] += count;
}

double RateSeries::MeanRate() const {
  if (buckets_.empty()) return 0.0;
  std::uint64_t total = 0;
  for (auto b : buckets_) total += b;
  return static_cast<double>(total) / static_cast<double>(buckets_.size());
}

std::vector<std::size_t> RateSeries::SpikesAbove(double factor) const {
  std::vector<std::size_t> out;
  const double threshold = MeanRate() * factor;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    if (static_cast<double>(buckets_[i]) > threshold) out.push_back(i);
  }
  return out;
}

}  // namespace ranomaly::util
