// Minimal leveled logger.
//
// Libraries log through this instead of writing to std::cerr directly so
// tests can silence or capture output.  The default sink is stderr.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

namespace ranomaly::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

using LogSink = std::function<void(LogLevel, const std::string&)>;

// Replaces the global sink; returns the previous one.  Pass nullptr to
// restore the default stderr sink.
LogSink SetLogSink(LogSink sink);

// Messages below this level are dropped before reaching the sink.
void SetLogLevel(LogLevel min_level);
LogLevel GetLogLevel();

void Log(LogLevel level, const std::string& message);

#define RANOMALY_LOG(level, msg)                                  \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::ranomaly::util::GetLogLevel())) {      \
      ::ranomaly::util::Log((level), (msg));                      \
    }                                                             \
  } while (0)

namespace detail {
// Decides whether occurrence `++seen` at this call site should be
// emitted (the 1st, then every `every_n`-th); on emission, fills
// `suppressed` with how many occurrences were swallowed since the
// previous emission so totals stay auditable.
bool ShouldLogEveryN(std::atomic<std::uint64_t>& seen,
                     std::atomic<std::uint64_t>& last_logged,
                     std::uint64_t every_n, std::uint64_t& suppressed);
}  // namespace detail

// "msg (123 similar suppressed)"; returns msg unchanged when none were.
std::string WithSuppressedSuffix(std::string msg, std::uint64_t suppressed);

// Process-wide count of log lines swallowed by RANOMALY_LOG_EVERY_N rate
// limiting across every call site; exported as the
// log_lines_suppressed_total gauge so dropped diagnostics stay visible.
std::uint64_t SuppressedLogLines();

// Rate-limited logging: emits the first occurrence at this call site,
// then every `every_n`-th, appending the count of suppressed messages.
// The message expression is only evaluated when it will be emitted, so
// a pathological feed pays one relaxed fetch_add per suppressed call.
#define RANOMALY_LOG_EVERY_N(level, every_n, msg)                          \
  do {                                                                     \
    static ::std::atomic<::std::uint64_t> ranomaly_len_seen_{0};           \
    static ::std::atomic<::std::uint64_t> ranomaly_len_logged_{0};         \
    ::std::uint64_t ranomaly_len_suppressed_ = 0;                          \
    if (::ranomaly::util::detail::ShouldLogEveryN(                         \
            ranomaly_len_seen_, ranomaly_len_logged_, (every_n),           \
            ranomaly_len_suppressed_) &&                                   \
        static_cast<int>(level) >=                                         \
            static_cast<int>(::ranomaly::util::GetLogLevel())) {           \
      ::ranomaly::util::Log((level),                                       \
                            ::ranomaly::util::WithSuppressedSuffix(        \
                                (msg), ranomaly_len_suppressed_));         \
    }                                                                      \
  } while (0)

}  // namespace ranomaly::util
