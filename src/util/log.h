// Minimal leveled logger.
//
// Libraries log through this instead of writing to std::cerr directly so
// tests can silence or capture output.  The default sink is stderr.
#pragma once

#include <functional>
#include <string>

namespace ranomaly::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3 };

using LogSink = std::function<void(LogLevel, const std::string&)>;

// Replaces the global sink; returns the previous one.  Pass nullptr to
// restore the default stderr sink.
LogSink SetLogSink(LogSink sink);

// Messages below this level are dropped before reaching the sink.
void SetLogLevel(LogLevel min_level);
LogLevel GetLogLevel();

void Log(LogLevel level, const std::string& message);

#define RANOMALY_LOG(level, msg)                                  \
  do {                                                            \
    if (static_cast<int>(level) >=                                \
        static_cast<int>(::ranomaly::util::GetLogLevel())) {      \
      ::ranomaly::util::Log((level), (msg));                      \
    }                                                             \
  } while (0)

}  // namespace ranomaly::util
