// FlatSet: a sorted-unique vector of 32-bit ids with set algebra.
//
// TAMP edge weights are *unique prefix counts* with set-union merge
// semantics (paper Fig 1: "4 not 6").  A sorted flat vector gives cache-
// friendly unions/intersections and O(log n) membership, and its size()
// is exactly the paper's edge weight.
#pragma once

#include <algorithm>
#include <cstdint>
#include <initializer_list>
#include <vector>

namespace ranomaly::util {

class FlatSet {
 public:
  using value_type = std::uint32_t;
  using const_iterator = std::vector<value_type>::const_iterator;

  FlatSet() = default;
  FlatSet(std::initializer_list<value_type> init) : v_(init) {
    Normalize();
  }
  explicit FlatSet(std::vector<value_type> v) : v_(std::move(v)) {
    Normalize();
  }

  // Inserts one id; returns true if it was new.  O(n) worst case, but the
  // common pattern in TAMP animation is appending near the end.
  bool Insert(value_type x) {
    const auto it = std::lower_bound(v_.begin(), v_.end(), x);
    if (it != v_.end() && *it == x) return false;
    v_.insert(it, x);
    return true;
  }

  // Removes one id; returns true if it was present.
  bool Erase(value_type x) {
    const auto it = std::lower_bound(v_.begin(), v_.end(), x);
    if (it == v_.end() || *it != x) return false;
    v_.erase(it);
    return true;
  }

  bool Contains(value_type x) const {
    return std::binary_search(v_.begin(), v_.end(), x);
  }

  std::size_t size() const { return v_.size(); }
  bool empty() const { return v_.empty(); }
  void clear() { v_.clear(); }

  const_iterator begin() const { return v_.begin(); }
  const_iterator end() const { return v_.end(); }

  const std::vector<value_type>& values() const { return v_; }

  // In-place union: *this |= other.
  void UnionWith(const FlatSet& other) {
    std::vector<value_type> out;
    out.reserve(v_.size() + other.v_.size());
    std::set_union(v_.begin(), v_.end(), other.v_.begin(), other.v_.end(),
                   std::back_inserter(out));
    v_ = std::move(out);
  }

  // In-place difference: *this -= other.
  void DifferenceWith(const FlatSet& other) {
    std::vector<value_type> out;
    out.reserve(v_.size());
    std::set_difference(v_.begin(), v_.end(), other.v_.begin(), other.v_.end(),
                        std::back_inserter(out));
    v_ = std::move(out);
  }

  // In-place intersection.
  void IntersectWith(const FlatSet& other) {
    std::vector<value_type> out;
    std::set_intersection(v_.begin(), v_.end(), other.v_.begin(),
                          other.v_.end(), std::back_inserter(out));
    v_ = std::move(out);
  }

  static FlatSet Union(const FlatSet& a, const FlatSet& b) {
    FlatSet r = a;
    r.UnionWith(b);
    return r;
  }

  static FlatSet Intersection(const FlatSet& a, const FlatSet& b) {
    FlatSet r = a;
    r.IntersectWith(b);
    return r;
  }

  // |a & b| without materializing the intersection.
  static std::size_t IntersectionSize(const FlatSet& a, const FlatSet& b) {
    std::size_t n = 0;
    auto i = a.v_.begin();
    auto j = b.v_.begin();
    while (i != a.v_.end() && j != b.v_.end()) {
      if (*i < *j) {
        ++i;
      } else if (*j < *i) {
        ++j;
      } else {
        ++n;
        ++i;
        ++j;
      }
    }
    return n;
  }

  friend bool operator==(const FlatSet& a, const FlatSet& b) = default;

 private:
  void Normalize() {
    std::sort(v_.begin(), v_.end());
    v_.erase(std::unique(v_.begin(), v_.end()), v_.end());
  }

  std::vector<value_type> v_;
};

}  // namespace ranomaly::util
