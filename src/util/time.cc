#include "util/time.h"

#include <cmath>
#include <cstdio>

namespace ranomaly::util {

std::string FormatDuration(SimDuration d) {
  char buf[64];
  const double secs = ToSeconds(d);
  if (secs < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.1f ms", secs * 1e3);
  } else if (secs < 600.0) {
    std::snprintf(buf, sizeof(buf), "%.0f sec", secs);
  } else if (secs < 2.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1f min", secs / 60.0);
  } else if (secs < 48.0 * 3600.0) {
    std::snprintf(buf, sizeof(buf), "%.1f hrs", secs / 3600.0);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f days", secs / 86400.0);
  }
  return buf;
}

std::string FormatTime(SimTime t) {
  const std::int64_t total_ms = t / kMillisecond;
  const std::int64_t ms = total_ms % 1000;
  const std::int64_t s = (total_ms / 1000) % 60;
  const std::int64_t m = (total_ms / 60000) % 60;
  const std::int64_t h = total_ms / 3600000;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "[+%02lld:%02lld:%02lld.%03lld]",
                static_cast<long long>(h), static_cast<long long>(m),
                static_cast<long long>(s), static_cast<long long>(ms));
  return buf;
}

}  // namespace ranomaly::util
