// Simulated-time primitives.
//
// All libraries in this project are driven by *simulated* time: nothing in
// src/ ever reads a wall clock, so every test, example and benchmark is
// bit-for-bit reproducible.  Resolution is one microsecond, which is fine
// enough to express the 10 us MED-oscillation dynamics of the paper's
// Section IV-F.
#pragma once

#include <cstdint>
#include <string>

namespace ranomaly::util {

// Microseconds since an arbitrary simulation epoch.
using SimTime = std::int64_t;
// Difference between two SimTime values, in microseconds.
using SimDuration = std::int64_t;

inline constexpr SimDuration kMicrosecond = 1;
inline constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
inline constexpr SimDuration kSecond = 1000 * kMillisecond;
inline constexpr SimDuration kMinute = 60 * kSecond;
inline constexpr SimDuration kHour = 60 * kMinute;
inline constexpr SimDuration kDay = 24 * kHour;

// Converts to fractional seconds (for reporting only).
constexpr double ToSeconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}

constexpr SimDuration FromSeconds(double s) {
  return static_cast<SimDuration>(s * static_cast<double>(kSecond));
}

// Renders a duration in a human unit ("423 sec", "36 min", "7.6 hrs"),
// matching the style of the paper's Table I "Timerange" column.
std::string FormatDuration(SimDuration d);

// Renders a simulation timestamp as "[+HH:MM:SS.mmm]" from the epoch.
std::string FormatTime(SimTime t);

}  // namespace ranomaly::util
