// Fixed-size deterministic thread pool.
//
// The analysis hot path (Stemming's sharded encode/count/extract, the
// Pipeline's per-spike-window fan-out) needs parallelism whose *results*
// are bit-identical to the serial path.  The pool therefore has no work
// stealing and no scheduling freedom that could leak into outputs: work
// is expressed as `chunks` indexed tasks, callers store per-chunk results
// and merge them in chunk order, so which thread ran a chunk can never
// matter.  Thread count is an execution resource, not an algorithm
// parameter — `RANOMALY_THREADS=1` and `RANOMALY_THREADS=8` must produce
// identical bytes.
//
// Slots: the two-argument ParallelFor passes the executing lane's slot
// (0 = the calling thread, 1..threads-1 = workers).  Chunks that share a
// slot run sequentially, so per-slot scratch buffers can be reused
// across chunks without synchronization.  Slot *assignment* is
// nondeterministic — anything that can reach the output must be keyed
// per chunk and merged in chunk order; slots are for capacity reuse
// (cleared per chunk) only.
//
// Nesting: ParallelFor issued from inside a pool worker (e.g. a stemming
// shard count inside a parallel spike window) runs inline on that worker
// rather than deadlocking on the already-busy pool.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace ranomaly::util {

class ThreadPool {
 public:
  // threads == 0 picks DefaultThreadCount().  A pool of 1 spawns no
  // workers; ParallelFor then runs inline.
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t threads() const { return threads_; }

  // Runs fn(chunk) for every chunk in [0, chunks), on the workers plus
  // the calling thread, and returns when all chunks completed.  Chunks
  // are claimed in index order from a shared counter.  fn must not
  // throw.  Calls from different threads are serialized; calls from
  // inside a worker run inline.
  void ParallelFor(std::size_t chunks,
                   const std::function<void(std::size_t)>& fn);

  // As above, but fn(chunk, slot) also receives the executing lane's
  // slot in [0, threads()).  See the header comment for the reuse and
  // determinism contract.
  void ParallelFor(
      std::size_t chunks,
      const std::function<void(std::size_t, std::size_t)>& fn);

  // Grain control: number of chunks needed to cover `items` work items
  // at `grain` items per chunk (at least 1 chunk when items > 0).  The
  // split depends only on the inputs, never on the thread count, so a
  // ParallelFor over it is deterministic by construction.
  static std::size_t ChunksFor(std::size_t items, std::size_t grain) {
    if (items == 0) return 0;
    const std::size_t g = grain == 0 ? 1 : grain;
    return (items + g - 1) / g;
  }

  // The [begin, end) item range of `chunk` under the same split.
  static std::pair<std::size_t, std::size_t> ChunkRange(std::size_t items,
                                                        std::size_t grain,
                                                        std::size_t chunk) {
    const std::size_t g = grain == 0 ? 1 : grain;
    const std::size_t begin = chunk * g;
    const std::size_t end = begin + g < items ? begin + g : items;
    return {begin, end};
  }

  // RANOMALY_THREADS if set (clamped to [1, 256]), else
  // hardware_concurrency(), else 1.
  static std::size_t DefaultThreadCount();

 private:
  void WorkerMain(std::size_t slot);
  void RunChunks(std::uint32_t generation,
                 const std::function<void(std::size_t, std::size_t)>& fn,
                 std::size_t end, std::size_t slot);
  void RunInline(std::size_t chunks,
                 const std::function<void(std::size_t, std::size_t)>& fn);

  std::size_t threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;   // workers wait for a new job
  std::condition_variable done_cv_;   // caller waits for completion
  std::mutex caller_mu_;              // serializes ParallelFor callers
  std::uint32_t generation_ = 0;      // bumped per job
  bool shutdown_ = false;

  // Current job; fn_/end_ are written and read under mu_ (stragglers are
  // fenced off by the generation tag in claim_).
  const std::function<void(std::size_t, std::size_t)>* fn_ = nullptr;
  std::size_t end_ = 0;
  // (generation << 32) | next_chunk_index — the claim word.
  std::atomic<std::uint64_t> claim_{0};
  std::atomic<std::size_t> completed_{0};
  // Sum of per-chunk execution nanoseconds for the current job; with the
  // job's wall time it yields the pool_utilization gauge (busy time over
  // threads x wall — 1.0 means no lane ever starved).
  std::atomic<std::uint64_t> busy_ns_{0};
};

}  // namespace ranomaly::util
