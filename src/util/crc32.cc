#include "util/crc32.h"

#include <array>
#include <bit>
#include <cstring>

namespace ranomaly::util {
namespace {

constexpr std::uint32_t kPolynomial = 0xedb88320u;  // reflected 0x04c11db7

// Slice-by-8 tables: kTables[0] is the classic byte-at-a-time table;
// kTables[k][b] is the CRC contribution of byte b seen k positions
// earlier, letting the hot loop fold 8 input bytes per iteration.
// Checkpoint payloads run to hundreds of kilobytes and are CRC'd on
// every periodic write, so the ~6x speedup over the byte loop matters.
constexpr std::array<std::array<std::uint32_t, 256>, 8> MakeTables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = tables[k - 1][i];
      tables[k][i] = tables[0][prev & 0xff] ^ (prev >> 8);
    }
  }
  return tables;
}

constexpr std::array<std::array<std::uint32_t, 256>, 8> kTables = MakeTables();

}  // namespace

void Crc32Accumulator::Update(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  if constexpr (std::endian::native == std::endian::little) {
    while (size >= 8) {
      std::uint32_t lo;
      std::uint32_t hi;
      std::memcpy(&lo, bytes, 4);
      std::memcpy(&hi, bytes + 4, 4);
      lo ^= c;
      c = kTables[7][lo & 0xff] ^ kTables[6][(lo >> 8) & 0xff] ^
          kTables[5][(lo >> 16) & 0xff] ^ kTables[4][lo >> 24] ^
          kTables[3][hi & 0xff] ^ kTables[2][(hi >> 8) & 0xff] ^
          kTables[1][(hi >> 16) & 0xff] ^ kTables[0][hi >> 24];
      bytes += 8;
      size -= 8;
    }
  }
  for (std::size_t i = 0; i < size; ++i) {
    c = kTables[0][(c ^ bytes[i]) & 0xff] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  Crc32Accumulator acc;
  acc.Update(data, size);
  return acc.value();
}

}  // namespace ranomaly::util
