#include "util/crc32.h"

#include <array>

namespace ranomaly::util {
namespace {

constexpr std::uint32_t kPolynomial = 0xedb88320u;  // reflected 0x04c11db7

constexpr std::array<std::uint32_t, 256> MakeTable() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (kPolynomial ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = MakeTable();

}  // namespace

void Crc32Accumulator::Update(const void* data, std::size_t size) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t c = state_;
  for (std::size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ bytes[i]) & 0xff] ^ (c >> 8);
  }
  state_ = c;
}

std::uint32_t Crc32(const void* data, std::size_t size) {
  Crc32Accumulator acc;
  acc.Update(data, size);
  return acc.value();
}

}  // namespace ranomaly::util
