#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace ranomaly::util {

std::vector<std::string_view> Split(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> SplitWhitespace(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t start = i;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ParseU64(std::string_view s, std::uint64_t& out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char ch : s) {
    if (ch < '0' || ch > '9') return false;
    const std::uint64_t digit = static_cast<std::uint64_t>(ch - '0');
    if (v > (0xffffffffffffffffULL - digit) / 10) return false;
    v = v * 10 + digit;
  }
  out = v;
  return true;
}

bool ParseU32(std::string_view s, std::uint32_t& out) {
  std::uint64_t v = 0;
  if (!ParseU64(s, v) || v > 0xffffffffULL) return false;
  out = static_cast<std::uint32_t>(v);
  return true;
}

std::string StrPrintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string JoinU32(const std::vector<std::uint32_t>& items,
                    std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += std::to_string(items[i]);
  }
  return out;
}

}  // namespace ranomaly::util
