// CRC-32 (IEEE 802.3 polynomial, the zlib/PNG variant).
//
// Used to validate checkpoint files: a restore from a torn or bit-rotted
// snapshot must fail loudly rather than resume from a silently corrupt
// RIB.  Not cryptographic — it detects accidents, not adversaries.
#pragma once

#include <cstddef>
#include <cstdint>

namespace ranomaly::util {

// One-shot CRC over a buffer.
std::uint32_t Crc32(const void* data, std::size_t size);

// Incremental interface: feed chunks, then value().
class Crc32Accumulator {
 public:
  void Update(const void* data, std::size_t size);
  std::uint32_t value() const { return state_ ^ 0xffffffffu; }

 private:
  std::uint32_t state_ = 0xffffffffu;
};

}  // namespace ranomaly::util
