// Streaming statistics and time-series binning.
//
// Used by the collector's event-rate view (paper Fig 8), the spike
// detector, the analysis-stage perf counters, and benchmark reporting.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "util/time.h"

namespace ranomaly::util {

// Running summary statistics (Welford's online algorithm for variance).
class RunningStats {
 public:
  void Add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : mean_; }
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact percentile over a materialized sample (sorts a copy).
double Percentile(std::vector<double> sample, double p);

// Monotonic wall-clock stopwatch for perf *metering* only — algorithm
// behaviour stays on simulated time (DESIGN.md determinism rule; these
// readings never feed back into results).
class StageTimer {
 public:
  StageTimer() : start_(std::chrono::steady_clock::now()) {}
  double Seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

// Bins event timestamps into fixed-width buckets.  This is the data behind
// the paper's Fig 8 "BGP event rate" plot: each bucket's count is the
// number of events in that interval.
class RateSeries {
 public:
  RateSeries(SimTime start, SimDuration bucket_width);

  // Grow-and-clamp: a timestamp past the last bucket grows the series,
  // and one before `start` lands in bucket 0 (clamped, never dropped —
  // a mis-stamped event must still be visible in the rate view).
  // Clamped counts are tallied separately for audit.
  void Add(SimTime t, std::uint64_t count = 1);

  // How many counts arrived before `start` and were clamped into
  // bucket 0.
  std::uint64_t clamped() const { return clamped_; }

  // Bucket counts; index i covers [start + i*width, start + (i+1)*width).
  const std::vector<std::uint64_t>& buckets() const { return buckets_; }
  SimTime start() const { return start_; }
  SimDuration bucket_width() const { return width_; }

  // Mean bucket count (the "grass" level of Fig 8).
  double MeanRate() const;

  // Indices of buckets exceeding `factor` times the series mean; these are
  // the spikes the paper feeds to Stemming.
  std::vector<std::size_t> SpikesAbove(double factor) const;

 private:
  SimTime start_;
  SimDuration width_;
  std::vector<std::uint64_t> buckets_;
  std::uint64_t clamped_ = 0;
};

}  // namespace ranomaly::util
