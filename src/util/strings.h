// Small string helpers shared across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ranomaly::util {

// Splits on a single-character delimiter; empty fields are preserved.
std::vector<std::string_view> Split(std::string_view s, char delim);

// Splits on runs of whitespace; empty fields are dropped.
std::vector<std::string_view> SplitWhitespace(std::string_view s);

// Removes leading/trailing whitespace.
std::string_view Trim(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);

// Parses a non-negative decimal integer; returns false on any non-digit or
// overflow.  Used by the prefix/config parsers, which must reject garbage
// rather than silently truncate.
bool ParseU32(std::string_view s, std::uint32_t& out);
bool ParseU64(std::string_view s, std::uint64_t& out);

// printf-style formatting into a std::string.
std::string StrPrintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins items with a separator; Formatter maps an item to something
// streamable into std::string via operator+=.
std::string JoinU32(const std::vector<std::uint32_t>& items, std::string_view sep);

}  // namespace ranomaly::util
