// Interning pool: maps values of T to dense 32-bit ids and back.
//
// TAMP and Stemming both operate over millions of prefixes and AS paths;
// interning turns set operations on them into operations on dense integer
// ids (see flat_set.h), which is where most of the performance in the
// paper's Table I comes from.
//
// The index is open-addressed (linear probing over id+1 slots, dense
// values as the backing store) rather than an std::unordered_map: the
// stemming encoder calls Intern for every symbol of every event — tens
// of millions of times on Table I streams — and node-based maps were the
// single hottest thing in that profile.  Hashes are passed through a
// 64-bit finalizer because std::hash is the identity for integers, which
// would make linear probing degenerate on dense keys.
#pragma once

#include <cstdint>
#include <functional>
#include <stdexcept>
#include <vector>

namespace ranomaly::util {

template <typename T, typename Hash = std::hash<T>>
class InternPool {
 public:
  using Id = std::uint32_t;

  // Returns the id for `value`, inserting it if new.
  Id Intern(const T& value) {
    if (slots_.empty() || (values_.size() + 1) * 10 > slots_.size() * 7) {
      Grow(slots_.empty() ? 64 : slots_.size() * 2);
    }
    std::size_t i = Mix(Hash{}(value)) & mask_;
    while (slots_[i] != 0) {
      const Id id = slots_[i] - 1;
      if (values_[id] == value) return id;
      i = (i + 1) & mask_;
    }
    const Id id = static_cast<Id>(values_.size());
    values_.push_back(value);
    slots_[i] = id + 1;
    return id;
  }

  // Returns the id for `value` or `kNotFound` if it was never interned.
  static constexpr Id kNotFound = 0xffffffffu;
  Id Find(const T& value) const {
    if (slots_.empty()) return kNotFound;
    std::size_t i = Mix(Hash{}(value)) & mask_;
    while (slots_[i] != 0) {
      const Id id = slots_[i] - 1;
      if (values_[id] == value) return id;
      i = (i + 1) & mask_;
    }
    return kNotFound;
  }

  bool Contains(const T& value) const { return Find(value) != kNotFound; }

  const T& Lookup(Id id) const {
    if (id >= values_.size()) throw std::out_of_range("InternPool::Lookup");
    return values_[id];
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // Iteration over all interned values, id order.
  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

 private:
  static std::uint64_t Mix(std::uint64_t x) {
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
  }

  void Grow(std::size_t cap) {
    slots_.assign(cap, 0u);
    mask_ = cap - 1;
    for (Id id = 0; id < static_cast<Id>(values_.size()); ++id) {
      std::size_t i = Mix(Hash{}(values_[id])) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = id + 1;
    }
  }

  std::vector<std::uint32_t> slots_;  // id + 1; 0 = empty
  std::vector<T> values_;
  std::size_t mask_ = 0;
};

}  // namespace ranomaly::util
