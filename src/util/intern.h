// Interning pool: maps values of T to dense 32-bit ids and back.
//
// TAMP and Stemming both operate over millions of prefixes and AS paths;
// interning turns set operations on them into operations on dense integer
// ids (see flat_set.h), which is where most of the performance in the
// paper's Table I comes from.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <unordered_map>
#include <vector>

namespace ranomaly::util {

template <typename T, typename Hash = std::hash<T>>
class InternPool {
 public:
  using Id = std::uint32_t;

  // Returns the id for `value`, inserting it if new.
  Id Intern(const T& value) {
    auto [it, inserted] = index_.try_emplace(value, static_cast<Id>(values_.size()));
    if (inserted) values_.push_back(value);
    return it->second;
  }

  // Returns the id for `value` or `kNotFound` if it was never interned.
  static constexpr Id kNotFound = 0xffffffffu;
  Id Find(const T& value) const {
    const auto it = index_.find(value);
    return it == index_.end() ? kNotFound : it->second;
  }

  bool Contains(const T& value) const { return index_.contains(value); }

  const T& Lookup(Id id) const {
    if (id >= values_.size()) throw std::out_of_range("InternPool::Lookup");
    return values_[id];
  }

  std::size_t size() const { return values_.size(); }
  bool empty() const { return values_.empty(); }

  // Iteration over all interned values, id order.
  auto begin() const { return values_.begin(); }
  auto end() const { return values_.end(); }

 private:
  std::unordered_map<T, Id, Hash> index_;
  std::vector<T> values_;
};

}  // namespace ranomaly::util
