#include "util/thread_pool.h"

#include <algorithm>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"

namespace ranomaly::util {
namespace {

// Set while a thread is executing pool work; nested ParallelFor calls
// (any pool) detect it and run inline instead of waiting on a pool that
// may be saturated by their own ancestors.
thread_local bool tls_in_pool_worker = false;

// The slot the current thread occupies in its pool (workers set it once
// at startup; a ParallelFor caller occupies slot 0 while participating).
// Nested inline calls inherit it so per-slot scratch stays per-thread.
thread_local std::size_t tls_worker_slot = 0;

}  // namespace

std::size_t ThreadPool::DefaultThreadCount() {
  if (const char* env = std::getenv("RANOMALY_THREADS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed >= 1) {
      return std::min<std::size_t>(static_cast<std::size_t>(parsed), 256);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

ThreadPool::ThreadPool(std::size_t threads)
    : threads_(threads == 0 ? DefaultThreadCount() : threads) {
  RANOMALY_METRIC_SET("pool_threads", static_cast<double>(threads_));
  workers_.reserve(threads_ > 0 ? threads_ - 1 : 0);
  for (std::size_t i = 0; i + 1 < threads_; ++i) {
    const std::size_t worker_index = i + 1;  // caller thread is worker 0
    workers_.emplace_back([this, worker_index] {
#ifndef RANOMALY_NO_TRACING
      obs::Tracer::Global().SetCurrentThreadName(
          "pool-worker-" + std::to_string(worker_index));
#endif
      WorkerMain(worker_index);
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

void ThreadPool::RunChunks(
    std::uint32_t generation,
    const std::function<void(std::size_t, std::size_t)>& fn, std::size_t end,
    std::size_t slot) {
  // Claims are CAS increments on a (generation | index) word: a worker
  // waking late can never claim an index against a newer job's bounds,
  // because the generation tag no longer matches.
  const bool was_in_worker = tls_in_pool_worker;
  tls_in_pool_worker = true;
  std::uint64_t v = claim_.load(std::memory_order_acquire);
  for (;;) {
    if (static_cast<std::uint32_t>(v >> 32) != generation) break;
    const std::size_t idx = static_cast<std::uint32_t>(v);
    if (idx >= end) break;
    if (!claim_.compare_exchange_weak(v, v + 1, std::memory_order_acq_rel,
                                      std::memory_order_acquire)) {
      continue;  // v reloaded by the failed CAS
    }
    {
      StageTimer chunk_timer;
      fn(idx, slot);
      const double seconds = chunk_timer.Seconds();
      busy_ns_.fetch_add(static_cast<std::uint64_t>(seconds * 1e9),
                         std::memory_order_relaxed);
      RANOMALY_METRIC_COUNT("pool_chunks_total", 1);
      RANOMALY_METRIC_OBSERVE("pool_chunk_seconds", obs::TimeBounds(),
                              seconds);
    }
    if (completed_.fetch_add(1, std::memory_order_acq_rel) + 1 == end) {
      // Last chunk: wake the caller.  Lock so the notify cannot slip
      // between the caller's predicate check and its wait.
      std::lock_guard<std::mutex> lock(mu_);
      done_cv_.notify_all();
    }
    v = claim_.load(std::memory_order_acquire);
  }
  tls_in_pool_worker = was_in_worker;
}

void ThreadPool::WorkerMain(std::size_t slot) {
  tls_worker_slot = slot;
  std::uint32_t seen_generation = 0;
  for (;;) {
    const std::function<void(std::size_t, std::size_t)>* fn = nullptr;
    std::size_t end = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || generation_ != seen_generation;
      });
      if (shutdown_) return;
      seen_generation = generation_;
      fn = fn_;
      end = end_;
    }
    RunChunks(seen_generation, *fn, end, slot);
  }
}

void ThreadPool::RunInline(
    std::size_t chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  // Serial pool, trivial job, or nested call from a worker.  The slot is
  // whatever lane this thread already occupies, clamped to this pool's
  // width so per-slot scratch sized to threads() stays in range.
  const bool was_in_worker = tls_in_pool_worker;
  tls_in_pool_worker = true;
  const std::size_t slot =
      threads_ == 0 ? 0 : std::min(tls_worker_slot, threads_ - 1);
  for (std::size_t i = 0; i < chunks; ++i) {
    StageTimer chunk_timer;
    fn(i, slot);
    RANOMALY_METRIC_COUNT("pool_chunks_total", 1);
    RANOMALY_METRIC_OBSERVE("pool_chunk_seconds", obs::TimeBounds(),
                            chunk_timer.Seconds());
  }
  tls_in_pool_worker = was_in_worker;
}

void ThreadPool::ParallelFor(std::size_t chunks,
                             const std::function<void(std::size_t)>& fn) {
  if (chunks == 0) return;
  ParallelFor(chunks,
              std::function<void(std::size_t, std::size_t)>(
                  [&fn](std::size_t chunk, std::size_t) { fn(chunk); }));
}

void ThreadPool::ParallelFor(
    std::size_t chunks,
    const std::function<void(std::size_t, std::size_t)>& fn) {
  if (chunks == 0) return;
  RANOMALY_METRIC_COUNT("pool_jobs_total", 1);
  obs::TraceSpan span("pool.parallel_for");
  span.Annotate("chunks", static_cast<std::uint64_t>(chunks));
  if (workers_.empty() || chunks == 1 || tls_in_pool_worker) {
    span.Annotate("mode", "inline");
    RunInline(chunks, fn);
    return;
  }
  span.Annotate("mode", "pooled");
  std::lock_guard<std::mutex> caller_lock(caller_mu_);
  StageTimer job_timer;
  std::uint32_t generation;
  {
    std::lock_guard<std::mutex> lock(mu_);
    generation = ++generation_;
    fn_ = &fn;
    end_ = chunks;
    completed_.store(0, std::memory_order_relaxed);
    busy_ns_.store(0, std::memory_order_relaxed);
    claim_.store(static_cast<std::uint64_t>(generation) << 32,
                 std::memory_order_release);
  }
  work_cv_.notify_all();
  // The caller participates as slot 0 (workers are 1..threads-1).
  const std::size_t saved_slot = tls_worker_slot;
  tls_worker_slot = 0;
  RunChunks(generation, fn, chunks, 0);
  tls_worker_slot = saved_slot;
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return completed_.load(std::memory_order_acquire) == end_;
  });
  fn_ = nullptr;
  lock.unlock();
  // Utilization = busy time over lanes x wall.  Gauge + *_seconds
  // histogram only: both are wall-derived, so they are exempt from the
  // cross-thread-count metric determinism contract.
  const double wall = job_timer.Seconds();
  const double busy =
      static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) / 1e9;
  if (wall > 0.0 && threads_ > 0) {
    RANOMALY_METRIC_SET(
        "pool_utilization",
        std::min(1.0, busy / (wall * static_cast<double>(threads_))));
  }
  RANOMALY_METRIC_OBSERVE("pool_job_seconds", obs::TimeBounds(), wall);
  RANOMALY_METRIC_OBSERVE("pool_busy_seconds", obs::TimeBounds(), busy);
}

}  // namespace ranomaly::util
