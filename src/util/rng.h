// Deterministic pseudo-random number generation.
//
// The project never uses std::random_device or unseeded engines: every
// consumer receives an explicitly seeded Rng so that workloads and
// benchmarks are reproducible across runs and machines.
#pragma once

#include <cstdint>
#include <vector>

namespace ranomaly::util {

// xoshiro256** seeded via SplitMix64.  Small, fast, and good enough for
// workload synthesis (we are not doing cryptography).
class Rng {
 public:
  explicit Rng(std::uint64_t seed);

  // Uniform 64-bit value.
  std::uint64_t Next();

  // Uniform in [0, bound), bound > 0.
  std::uint64_t NextBelow(std::uint64_t bound);

  // Uniform integer in [lo, hi] inclusive; requires lo <= hi.
  std::int64_t NextInRange(std::int64_t lo, std::int64_t hi);

  // Uniform double in [0, 1).
  double NextDouble();

  // Bernoulli trial.
  bool NextBool(double p_true);

  // Exponentially distributed value with the given mean (> 0).
  double NextExponential(double mean);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(NextBelow(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Derives an independent child generator (for per-subsystem streams).
  Rng Fork();

 private:
  std::uint64_t s_[4];
};

// Zipf(n, alpha) sampler over ranks 1..n.  Used to synthesize the
// elephant-and-mice traffic skew of Section III-D.2: with alpha ~ 1 a
// small fraction of prefixes carries most of the volume.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double alpha);

  // Returns a rank in [0, n), rank 0 being the most popular.
  std::size_t Sample(Rng& rng) const;

  // Probability mass of a given rank.
  double Mass(std::size_t rank) const;

  std::size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace ranomaly::util
