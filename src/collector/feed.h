// Feed adapter: replays a pre-built, time-ordered batch of raw feed
// operations through a Collector.
//
// Workload generators (workload::BuildInternetScale and friends) produce
// routing activity as plain (time, peer, type, prefix, attrs) tuples.
// Pushing them through the Collector's raw feed interface — instead of
// constructing an EventStream by hand — buys the real collection-layer
// semantics for free: monotonic timestamp clamping, withdrawal
// augmentation from the per-peer Adj-RIB-In, per-peer health counters,
// and GAP/SYNC marker bookkeeping.  The resulting stream is exactly what
// a live deployment's collector would have recorded.
#pragma once

#include <vector>

#include "collector/collector.h"

namespace ranomaly::collector {

// One raw feed operation.  `attrs` is used by kAnnounce only; a
// kWithdraw is augmented from the collector's Adj-RIB-In like any wire
// withdrawal, and marker types carry neither prefix nor attributes.
struct FeedOp {
  util::SimTime time = 0;
  bgp::Ipv4Addr peer;
  bgp::EventType type = bgp::EventType::kAnnounce;
  bgp::Prefix prefix;
  bgp::PathAttributes attrs;
};

// Stable-sorts `ops` by time (equal times keep their relative order, so
// generators control intra-timestamp ordering by emission order).
void SortFeed(std::vector<FeedOp>& ops);

// Applies every op through the collector's raw feed interface, in order.
// Announce attributes are moved, not copied; `ops` is consumed.
void ApplyFeed(Collector& collector, std::vector<FeedOp>&& ops);

}  // namespace ranomaly::collector
