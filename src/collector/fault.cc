#include "collector/fault.h"

#include <algorithm>
#include <utility>

#include "bgp/codec.h"

namespace ranomaly::collector {

FaultInjector::FaultInjector(FaultOptions options, std::uint64_t seed)
    : options_(options), rng_(seed) {}

void FaultInjector::Corrupt(std::vector<std::uint8_t>& frame) {
  if (frame.empty()) return;
  if (rng_.NextBool(0.5)) {
    // Truncation.  The header's declared length now exceeds the frame, so
    // the decoder always reports a framing error — never partial content.
    frame.resize(static_cast<std::size_t>(rng_.NextBelow(frame.size())));
  } else {
    // Flip 1-4 bits inside the 16-byte marker: any flip there is a
    // guaranteed, detectable framing error (the marker must be all-ones).
    const std::size_t span = std::min<std::size_t>(frame.size(), 16);
    const int flips = 1 + static_cast<int>(rng_.NextBelow(4));
    for (int i = 0; i < flips; ++i) {
      const std::size_t byte = static_cast<std::size_t>(rng_.NextBelow(span));
      frame[byte] ^= static_cast<std::uint8_t>(1u << rng_.NextBelow(8));
    }
  }
}

std::vector<InjectedFrame> FaultInjector::Process(
    util::SimTime now, bgp::Ipv4Addr peer, std::vector<std::uint8_t> frame) {
  std::vector<InjectedFrame> out;
  ++stats_.frames;
  if (rng_.NextBool(options_.drop_probability)) {
    ++stats_.dropped;
    return out;
  }
  if (rng_.NextBool(options_.corrupt_probability)) {
    ++stats_.corrupted;
    Corrupt(frame);
  }
  if (frame.size() > 19 && rng_.NextBool(options_.payload_bitflip_probability)) {
    // A flip past the header: may decode as treat-as-withdraw, garbage
    // content, or even cleanly — exactly the hazard RFC 7606 addresses.
    ++stats_.payload_flipped;
    const std::size_t byte =
        19 + static_cast<std::size_t>(rng_.NextBelow(frame.size() - 19));
    frame[byte] ^= static_cast<std::uint8_t>(1u << rng_.NextBelow(8));
  }
  util::SimTime time = now;
  if (options_.max_clock_skew > 0) {
    const util::SimDuration skew =
        rng_.NextInRange(-options_.max_clock_skew, options_.max_clock_skew);
    if (skew != 0) ++stats_.skewed;
    time += skew;
  }

  InjectedFrame current{time, peer, std::move(frame)};
  if (!held_ && rng_.NextBool(options_.reorder_probability)) {
    // Hold this frame back; it is released after the next frame passes
    // (pairwise swap), or by Flush at end of feed.
    ++stats_.reordered;
    held_ = std::move(current);
    return out;
  }
  if (rng_.NextBool(options_.duplicate_probability)) {
    ++stats_.duplicated;
    out.push_back(current);
  }
  out.push_back(std::move(current));
  if (held_) {
    out.push_back(std::move(*held_));
    held_.reset();
  }
  return out;
}

std::vector<InjectedFrame> FaultInjector::Flush() {
  std::vector<InjectedFrame> out;
  if (held_) {
    out.push_back(std::move(*held_));
    held_.reset();
  }
  return out;
}

WireFeed::WireFeed(net::Simulator& sim, FeedSupervisor& supervisor,
                   FaultOptions faults, std::uint64_t seed)
    : sim_(sim),
      supervisor_(&supervisor),
      injector_(faults, seed),
      keepalive_interval_(supervisor.options().hold_time / 3) {}

void WireFeed::Monitor(net::RouterIndex router) {
  const bgp::Ipv4Addr addr = sim_.topology().router(router).address;
  monitored_.push_back(addr);
  supervisor_->AddPeer(addr);
  mirror_.try_emplace(addr);
  next_keepalive_[addr] = keepalive_interval_;
  transport_down_[addr] = false;
  sim_.AddBestPathTap(router, [this, addr](const net::BestPathChangeView& v) {
    OnView(addr, v);
  });
}

void WireFeed::Attach(FeedSupervisor& supervisor, util::SimTime now) {
  supervisor_ = &supervisor;
  keepalive_interval_ = supervisor.options().hold_time / 3;
  for (const bgp::Ipv4Addr peer : monitored_) {
    supervisor_->AddPeer(peer, now);
    next_keepalive_[peer] = now + keepalive_interval_;
  }
}

void WireFeed::ScheduleSessionDrop(util::SimTime at, net::RouterIndex router,
                                   util::SimDuration down_for) {
  const bgp::Ipv4Addr addr = sim_.topology().router(router).address;
  control_.push_back(ControlEvent{at, addr, /*up=*/false});
  control_.push_back(ControlEvent{at + down_for, addr, /*up=*/true});
  std::stable_sort(control_.begin() + static_cast<std::ptrdiff_t>(control_next_),
                   control_.end(),
                   [](const ControlEvent& a, const ControlEvent& b) {
                     return a.time < b.time;
                   });
}

void WireFeed::Deliver(util::SimTime now, bgp::Ipv4Addr peer,
                       std::vector<std::uint8_t> frame) {
  ++frames_sent_;
  for (InjectedFrame& f : injector_.Process(now, peer, std::move(frame))) {
    supervisor_->OnFrame(f.time, f.peer, f.frame);
  }
}

void WireFeed::Pump(util::SimTime now) {
  for (;;) {
    // Earliest pending control event or keepalive due at or before `now`;
    // monitored_ order breaks ties deterministically.
    int kind = -1;  // 0 = control, 1 = keepalive
    util::SimTime best = 0;
    bgp::Ipv4Addr who;
    if (control_next_ < control_.size() &&
        control_[control_next_].time <= now) {
      kind = 0;
      best = control_[control_next_].time;
    }
    for (const bgp::Ipv4Addr peer : monitored_) {
      if (transport_down_[peer]) continue;  // nothing crosses a dead TCP
      const util::SimTime due = next_keepalive_[peer];
      if (due <= now && (kind == -1 || due < best)) {
        kind = 1;
        best = due;
        who = peer;
      }
    }
    if (kind == -1) break;
    if (kind == 0) {
      const ControlEvent ev = control_[control_next_++];
      transport_down_[ev.peer] = !ev.up;
      if (ev.up) {
        supervisor_->OnTransportUp(ev.time, ev.peer);
        next_keepalive_[ev.peer] = ev.time + keepalive_interval_;
      } else {
        supervisor_->OnTransportDown(ev.time, ev.peer);
      }
    } else {
      next_keepalive_[who] += keepalive_interval_;
      Deliver(best, who, bgp::EncodeKeepalive());
    }
    supervisor_->OnTick(best);
    ServeResyncs(best);
  }
}

void WireFeed::OnView(bgp::Ipv4Addr peer, const net::BestPathChangeView& view) {
  Pump(view.time);
  // The mirror models the router's Adj-RIB-Out toward the collector:
  // updated before injection, untouched by channel faults.
  auto& mirror = mirror_[peer];
  bgp::UpdateMessage update;
  if (view.new_advertisable) {
    update.attrs = view.new_best->attrs;
    update.nlri.push_back(view.prefix);
    mirror[view.prefix] = view.new_best->attrs;
  } else if (mirror.erase(view.prefix) > 0) {
    update.withdrawn.push_back(view.prefix);
  } else {
    return;  // never advertised to us: nothing on the wire
  }
  if (!transport_down_[peer]) {
    Deliver(view.time, peer, bgp::EncodeUpdate(update));
    // Any traffic substitutes for a keepalive (RFC 4271 pacing).
    next_keepalive_[peer] = view.time + keepalive_interval_;
  }
  supervisor_->OnTick(view.time);
  ServeResyncs(view.time);
}

void WireFeed::ServeResyncs(util::SimTime now) {
  for (const bgp::Ipv4Addr peer : monitored_) {
    if (!supervisor_->TakeResyncRequest(peer)) continue;
    ++resyncs_served_;
    // Full-table replay from the mirror, sorted for determinism.  Replay
    // frames bypass the injector: the replay rides a fresh connection,
    // and a clean channel here is what lets a resync actually heal.
    const auto& mirror = mirror_[peer];
    std::vector<std::pair<bgp::Prefix, bgp::PathAttributes>> rows(
        mirror.begin(), mirror.end());
    std::sort(rows.begin(), rows.end(),
              [](const auto& a, const auto& b) {
                return a.first.addr().value() != b.first.addr().value()
                           ? a.first.addr().value() < b.first.addr().value()
                           : a.first.length() < b.first.length();
              });
    for (const auto& [prefix, attrs] : rows) {
      bgp::UpdateMessage update;
      update.attrs = attrs;
      update.nlri.push_back(prefix);
      supervisor_->OnFrame(now, peer, bgp::EncodeUpdate(update));
    }
    supervisor_->OnResyncComplete(now, peer);
  }
}

void WireFeed::Finish(util::SimTime now) {
  Pump(now);
  for (InjectedFrame& f : injector_.Flush()) {
    supervisor_->OnFrame(f.time, f.peer, f.frame);
  }
  supervisor_->OnTick(now);
  ServeResyncs(now);
}

}  // namespace ranomaly::collector
