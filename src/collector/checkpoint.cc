#include "collector/checkpoint.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/log.h"
#include "util/rng.h"
#include "util/strings.h"

namespace ranomaly::collector {
namespace {

constexpr char kMagic[4] = {'R', 'N', 'C', '1'};
constexpr std::uint32_t kVersion = 1;            // collector-only snapshot
constexpr std::uint32_t kVersionSections = 2;    // + named section table
// Refuse absurd declared sizes before allocating (a corrupt header must
// not turn into an OOM).
constexpr std::uint64_t kMaxPayload = 1ull << 32;
constexpr std::uint32_t kMaxSections = 256;

bool ValidSectionTag(std::string_view tag) {
  if (tag.size() != 4) return false;
  for (const char c : tag) {
    if (!std::isprint(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

std::mutex g_fault_mu;
CheckpointWriteFaultHook g_fault_hook;
bool g_fault_env_checked = false;

// Lazily installs the RANOMALY_CHAOS_CHECKPOINT env hook ("prob:seed"):
// each write fails with probability `prob`, alternating (seeded) between
// a short write and an open failure — the two torn-commit shapes the
// atomic-replace protocol must survive.
CheckpointWriteFaultHook CurrentFaultHook() {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  if (!g_fault_env_checked) {
    g_fault_env_checked = true;
    if (const char* spec = std::getenv("RANOMALY_CHAOS_CHECKPOINT");
        spec != nullptr && *spec != '\0') {
      double prob = 0.0;
      unsigned long long seed = 1;
      if (std::sscanf(spec, "%lf:%llu", &prob, &seed) >= 1 && prob > 0.0) {
        auto rng = std::make_shared<util::Rng>(seed);
        g_fault_hook = [rng, prob](std::size_t total) -> std::int64_t {
          if (!rng->NextBool(prob)) return -1;
          // Half the faults are ENOSPC-style (nothing lands), half are
          // torn short writes.
          return rng->NextBool(0.5)
                     ? 0
                     : static_cast<std::int64_t>(rng->NextBelow(total));
        };
      }
    }
  }
  return g_fault_hook;
}

}  // namespace

CheckpointWriteFaultHook SetCheckpointWriteFaultHook(
    CheckpointWriteFaultHook hook) {
  std::lock_guard<std::mutex> lock(g_fault_mu);
  g_fault_env_checked = true;  // an explicit hook overrides the env spec
  CheckpointWriteFaultHook prev = std::move(g_fault_hook);
  g_fault_hook = std::move(hook);
  return prev;
}

const Checkpoint::Section* Checkpoint::FindSection(
    std::string_view tag) const {
  for (const Section& s : sections) {
    if (s.tag == tag) return &s;
  }
  return nullptr;
}

std::size_t Checkpoint::RouteCount() const {
  std::size_t n = 0;
  for (const PeerTable& table : peers) n += table.routes.size();
  return n;
}

Checkpoint SnapshotCollector(const Collector& collector, util::SimTime now,
                             std::uint64_t event_offset) {
  Checkpoint out;
  out.time = now;
  out.event_offset = event_offset;
  for (const bgp::Ipv4Addr peer : collector.Peers()) {  // already sorted
    Checkpoint::PeerTable table;
    table.peer = peer;
    table.stale = collector.IsPeerStale(peer);
    table.routes = collector.PeerRoutes(peer);
    // Deterministic row order: the same collector state always produces
    // byte-identical checkpoint files.
    std::sort(table.routes.begin(), table.routes.end(),
              [](const auto& a, const auto& b) {
                return a.first.addr().value() != b.first.addr().value()
                           ? a.first.addr().value() < b.first.addr().value()
                           : a.first.length() < b.first.length();
              });
    out.peers.push_back(std::move(table));
  }
  return out;
}

void RestoreCollector(const Checkpoint& checkpoint, Collector& collector) {
  RANOMALY_METRIC_COUNT("collector_routes_restored_total",
                        checkpoint.RouteCount());
  for (const Checkpoint::PeerTable& table : checkpoint.peers) {
    collector.RestoreRib(table.peer, table.routes);
    if (table.stale) {
      collector.OnMarker(checkpoint.time, table.peer,
                         bgp::EventType::kFeedGap);
    }
  }
}

// Renders the complete file image (magic through trailing CRC) into
// `out` in one pass.  The periodic live snapshot serializes a few
// hundred kilobytes every interval, so the bytes are built exactly once
// — appended through io::StringSink with the payload size patched in
// afterwards — rather than staged through stringstream copies.
bool SerializeCheckpointFile(const Checkpoint& checkpoint, std::string& out) {
  if (checkpoint.sections.size() > kMaxSections) return false;
  for (const Checkpoint::Section& section : checkpoint.sections) {
    if (!ValidSectionTag(section.tag)) return false;
  }
  std::size_t estimate = 64;
  for (const Checkpoint::PeerTable& table : checkpoint.peers) {
    estimate += 16 + table.routes.size() * 48;
  }
  for (const Checkpoint::Section& section : checkpoint.sections) {
    estimate += 12 + section.bytes.size();
  }
  out.clear();
  out.reserve(estimate);
  io::StringSink sink(out);
  sink.write(kMagic, sizeof(kMagic));
  // Sectionless checkpoints stay version 1: the collector-only snapshot
  // bytes are identical to what PR 1 wrote.
  io::Put<std::uint32_t>(
      sink, checkpoint.sections.empty() ? kVersion : kVersionSections);
  io::Put<std::uint64_t>(sink, 0);  // payload size, patched below
  const std::size_t payload_begin = out.size();

  io::Put<std::int64_t>(sink, checkpoint.time);
  io::Put<std::uint64_t>(sink, checkpoint.event_offset);
  io::Put<std::uint32_t>(sink,
                         static_cast<std::uint32_t>(checkpoint.peers.size()));
  for (const Checkpoint::PeerTable& table : checkpoint.peers) {
    io::Put<std::uint32_t>(sink, table.peer.value());
    io::Put<std::uint8_t>(sink, table.stale ? 1 : 0);
    io::Put<std::uint64_t>(sink, table.routes.size());
    for (const auto& [prefix, attrs] : table.routes) {
      io::Put<std::uint32_t>(sink, prefix.addr().value());
      io::Put<std::uint8_t>(sink, prefix.length());
      io::PutAttrs(sink, attrs);
    }
  }
  if (!checkpoint.sections.empty()) {
    io::Put<std::uint32_t>(
        sink, static_cast<std::uint32_t>(checkpoint.sections.size()));
    for (const Checkpoint::Section& section : checkpoint.sections) {
      sink.write(section.tag.data(), 4);
      io::Put<std::uint64_t>(sink, section.bytes.size());
      sink.write(section.bytes.data(),
                 static_cast<std::streamsize>(section.bytes.size()));
    }
  }

  const std::uint64_t payload_size = out.size() - payload_begin;
  for (std::size_t i = 0; i < 8; ++i) {  // little-endian size patch
    out[payload_begin - 8 + i] =
        static_cast<char>((payload_size >> (8 * i)) & 0xff);
  }
  io::Put<std::uint32_t>(
      sink, util::Crc32(out.data() + payload_begin, payload_size));
  return true;
}

bool SaveCheckpoint(const Checkpoint& checkpoint, std::ostream& os) {
  std::string bytes;
  if (!SerializeCheckpointFile(checkpoint, bytes)) return false;
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  return static_cast<bool>(os);
}

std::optional<Checkpoint> LoadCheckpoint(std::istream& is,
                                         LoadDiagnostics* diag) {
  io::Reader r(is);
  LoadDiagnostics local;
  LoadDiagnostics& d = diag ? *diag : local;
  d = LoadDiagnostics{};
  const auto fail = [&](LoadError error, std::uint64_t record) {
    d.error = error;
    d.byte_offset = r.offset();
    d.event_index = record;
    return std::nullopt;
  };

  char magic[4];
  if (!r.GetRaw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail(LoadError::kBadMagic, 0);
  }
  std::uint32_t version = 0;
  if (!r.Get(version)) return fail(LoadError::kTruncated, 0);
  if (version != kVersion && version != kVersionSections) {
    return fail(LoadError::kBadVersion, 0);
  }
  std::uint64_t payload_size = 0;
  if (!r.Get(payload_size)) return fail(LoadError::kTruncated, 0);
  if (payload_size > kMaxPayload) return fail(LoadError::kBadEnum, 0);

  std::string bytes(payload_size, '\0');
  if (payload_size > 0 && !r.GetRaw(bytes.data(), bytes.size())) {
    return fail(LoadError::kTruncated, 0);
  }
  std::uint32_t crc = 0;
  if (!r.Get(crc)) return fail(LoadError::kTruncated, 0);
  if (crc != util::Crc32(bytes.data(), bytes.size())) {
    return fail(LoadError::kBadChecksum, 0);
  }

  // The payload is CRC-clean; parse it.  Field errors past this point are
  // reported with offsets relative to the whole file.
  std::istringstream payload(bytes);
  io::Reader pr(payload);
  const std::uint64_t payload_base = 4 + 4 + 8;
  const auto pfail = [&](LoadError error, std::uint64_t record) {
    d.error = error;
    d.byte_offset = payload_base + pr.offset();
    d.event_index = record;
    return std::nullopt;
  };

  Checkpoint out;
  std::int64_t time = 0;
  std::uint32_t peer_count = 0;
  if (!pr.Get(time) || !pr.Get(out.event_offset) || !pr.Get(peer_count)) {
    return pfail(LoadError::kTruncated, 0);
  }
  out.time = time;
  std::uint64_t record = 0;
  for (std::uint32_t p = 0; p < peer_count; ++p) {
    Checkpoint::PeerTable table;
    std::uint32_t addr = 0;
    std::uint8_t stale = 0;
    std::uint64_t route_count = 0;
    if (!pr.Get(addr) || !pr.Get(stale) || !pr.Get(route_count)) {
      return pfail(LoadError::kTruncated, record);
    }
    if (stale > 1) return pfail(LoadError::kBadEnum, record);
    table.peer = bgp::Ipv4Addr(addr);
    table.stale = stale != 0;
    table.routes.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(route_count, 1024)));
    for (std::uint64_t k = 0; k < route_count; ++k, ++record) {
      std::uint32_t prefix_addr = 0;
      std::uint8_t prefix_len = 0;
      if (!pr.Get(prefix_addr) || !pr.Get(prefix_len)) {
        return pfail(LoadError::kTruncated, record);
      }
      if (prefix_len > 32) return pfail(LoadError::kBadEnum, record);
      bgp::PathAttributes attrs;
      if (const LoadError err = io::GetAttrs(pr, attrs);
          err != LoadError::kNone) {
        return pfail(err, record);
      }
      table.routes.emplace_back(
          bgp::Prefix(bgp::Ipv4Addr(prefix_addr), prefix_len),
          std::move(attrs));
    }
    out.peers.push_back(std::move(table));
  }
  if (version >= kVersionSections) {
    std::uint32_t section_count = 0;
    if (!pr.Get(section_count)) return pfail(LoadError::kTruncated, record);
    if (section_count > kMaxSections) return pfail(LoadError::kBadEnum, record);
    for (std::uint32_t s = 0; s < section_count; ++s) {
      Checkpoint::Section section;
      char tag[4];
      std::uint64_t size = 0;
      if (!pr.GetRaw(tag, sizeof(tag)) || !pr.Get(size)) {
        return pfail(LoadError::kTruncated, record);
      }
      section.tag.assign(tag, sizeof(tag));
      // A section cannot be larger than the payload it lives in; checking
      // against the actual payload size keeps a crafted length field from
      // turning into a huge allocation.
      if (!ValidSectionTag(section.tag) || size > bytes.size()) {
        return pfail(LoadError::kBadEnum, record);
      }
      section.bytes.resize(static_cast<std::size_t>(size));
      if (size > 0 && !pr.GetRaw(section.bytes.data(), section.bytes.size())) {
        return pfail(LoadError::kTruncated, record);
      }
      out.sections.push_back(std::move(section));
    }
  }
  if (payload.peek() != std::istringstream::traits_type::eof()) {
    return pfail(LoadError::kBadEnum, record);  // trailing payload bytes
  }
  return out;
}

namespace {

// write(2) loop tolerating short writes and EINTR.
bool WriteAll(int fd, const char* data, std::size_t size) {
  std::size_t done = 0;
  while (done < size) {
    const ssize_t n = ::write(fd, data + done, size - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    done += static_cast<std::size_t>(n);
  }
  return true;
}

// fsync the directory containing `path` so the rename itself is durable
// (without this, a power loss can forget the directory entry and leave a
// zero-length or missing "committed" checkpoint).
bool FsyncParentDir(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return false;
  const bool ok = ::fsync(fd) == 0;
  ::close(fd);
  return ok;
}

}  // namespace

bool WriteCheckpointFile(const Checkpoint& checkpoint,
                         const std::string& path) {
  obs::TraceSpan span("checkpoint.write");
  span.Annotate("routes", static_cast<std::uint64_t>(checkpoint.RouteCount()));
  std::string bytes;
  if (!SerializeCheckpointFile(checkpoint, bytes)) return false;

  const auto fail_write = [] {
    RANOMALY_METRIC_COUNT("checkpoint_write_failures_total", 1);
    return false;
  };
  const std::string tmp = path + ".tmp";
  // Chaos hook: simulate a disk-full / torn write by stopping after a
  // prefix of the bytes.  The commit protocol below must turn any such
  // fault into "previous checkpoint survives", never a hybrid.
  std::size_t write_limit = bytes.size();
  bool faulted = false;
  if (const CheckpointWriteFaultHook hook = CurrentFaultHook(); hook) {
    if (const std::int64_t limit = hook(bytes.size()); limit >= 0) {
      write_limit = static_cast<std::size_t>(limit);
      faulted = true;
      RANOMALY_METRIC_COUNT("checkpoint_write_faults_injected_total", 1);
    }
  }

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail_write();
  const bool wrote = WriteAll(fd, bytes.data(), write_limit) && !faulted;
  // A torn temp file must never be renamed into place: sync before
  // rename so the *contents* are durable before the commit point, and
  // give up (keeping the old checkpoint) on any failure.  fdatasync
  // flushes the data and the size metadata needed to read it back;
  // timestamp durability is not part of the contract, and skipping its
  // journal commit roughly halves the kernel-side cost per snapshot.
  const bool synced = wrote && ::fdatasync(fd) == 0;
  ::close(fd);
  if (!synced) {
    ::unlink(tmp.c_str());
    return fail_write();
  }
  RANOMALY_METRIC_COUNT("checkpoint_fsyncs_total", 1);
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    return fail_write();
  }
  // Make the rename durable too.
  if (!FsyncParentDir(path)) return fail_write();
  RANOMALY_METRIC_COUNT("checkpoint_fsyncs_total", 1);
  RANOMALY_METRIC_COUNT("checkpoint_bytes_written_total", bytes.size());
  RANOMALY_METRIC_COUNT("checkpoint_writes_total", 1);
  return true;
}

std::optional<Checkpoint> ReadCheckpointFile(const std::string& path,
                                             LoadDiagnostics* diag) {
  obs::TraceSpan span("checkpoint.read");
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (diag) {
      *diag = LoadDiagnostics{};
      diag->error = LoadError::kTruncated;
    }
    RANOMALY_METRIC_COUNT("checkpoint_load_errors_total", 1);
    return std::nullopt;
  }
  auto checkpoint = LoadCheckpoint(is, diag);
  if (!checkpoint) {
    RANOMALY_METRIC_COUNT("checkpoint_load_errors_total", 1);
    if (diag) {
      RANOMALY_LOG(util::LogLevel::kWarn,
                   util::StrPrintf("checkpoint: refusing %s: %s", path.c_str(),
                                   diag->ToString().c_str()));
    }
    return checkpoint;
  }
  RANOMALY_METRIC_COUNT("checkpoint_loads_total", 1);
  span.Annotate("routes",
                static_cast<std::uint64_t>(checkpoint->RouteCount()));
  return checkpoint;
}

}  // namespace ranomaly::collector
