#include "collector/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/crc32.h"
#include "util/log.h"
#include "util/strings.h"

namespace ranomaly::collector {
namespace {

constexpr char kMagic[4] = {'R', 'N', 'C', '1'};
constexpr std::uint32_t kVersion = 1;
// Refuse absurd declared sizes before allocating (a corrupt header must
// not turn into an OOM).
constexpr std::uint64_t kMaxPayload = 1ull << 32;

}  // namespace

std::size_t Checkpoint::RouteCount() const {
  std::size_t n = 0;
  for (const PeerTable& table : peers) n += table.routes.size();
  return n;
}

Checkpoint SnapshotCollector(const Collector& collector, util::SimTime now,
                             std::uint64_t event_offset) {
  Checkpoint out;
  out.time = now;
  out.event_offset = event_offset;
  for (const bgp::Ipv4Addr peer : collector.Peers()) {  // already sorted
    Checkpoint::PeerTable table;
    table.peer = peer;
    table.stale = collector.IsPeerStale(peer);
    table.routes = collector.PeerRoutes(peer);
    // Deterministic row order: the same collector state always produces
    // byte-identical checkpoint files.
    std::sort(table.routes.begin(), table.routes.end(),
              [](const auto& a, const auto& b) {
                return a.first.addr().value() != b.first.addr().value()
                           ? a.first.addr().value() < b.first.addr().value()
                           : a.first.length() < b.first.length();
              });
    out.peers.push_back(std::move(table));
  }
  return out;
}

void RestoreCollector(const Checkpoint& checkpoint, Collector& collector) {
  RANOMALY_METRIC_COUNT("collector_routes_restored_total",
                        checkpoint.RouteCount());
  for (const Checkpoint::PeerTable& table : checkpoint.peers) {
    collector.RestoreRib(table.peer, table.routes);
    if (table.stale) {
      collector.OnMarker(checkpoint.time, table.peer,
                         bgp::EventType::kFeedGap);
    }
  }
}

bool SaveCheckpoint(const Checkpoint& checkpoint, std::ostream& os) {
  std::ostringstream payload;
  io::Put<std::int64_t>(payload, checkpoint.time);
  io::Put<std::uint64_t>(payload, checkpoint.event_offset);
  io::Put<std::uint32_t>(payload,
                         static_cast<std::uint32_t>(checkpoint.peers.size()));
  for (const Checkpoint::PeerTable& table : checkpoint.peers) {
    io::Put<std::uint32_t>(payload, table.peer.value());
    io::Put<std::uint8_t>(payload, table.stale ? 1 : 0);
    io::Put<std::uint64_t>(payload, table.routes.size());
    for (const auto& [prefix, attrs] : table.routes) {
      io::Put<std::uint32_t>(payload, prefix.addr().value());
      io::Put<std::uint8_t>(payload, prefix.length());
      io::PutAttrs(payload, attrs);
    }
  }
  const std::string bytes = payload.str();

  os.write(kMagic, sizeof(kMagic));
  io::Put<std::uint32_t>(os, kVersion);
  io::Put<std::uint64_t>(os, bytes.size());
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  io::Put<std::uint32_t>(os, util::Crc32(bytes.data(), bytes.size()));
  return static_cast<bool>(os);
}

std::optional<Checkpoint> LoadCheckpoint(std::istream& is,
                                         LoadDiagnostics* diag) {
  io::Reader r(is);
  LoadDiagnostics local;
  LoadDiagnostics& d = diag ? *diag : local;
  d = LoadDiagnostics{};
  const auto fail = [&](LoadError error, std::uint64_t record) {
    d.error = error;
    d.byte_offset = r.offset();
    d.event_index = record;
    return std::nullopt;
  };

  char magic[4];
  if (!r.GetRaw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail(LoadError::kBadMagic, 0);
  }
  std::uint32_t version = 0;
  if (!r.Get(version)) return fail(LoadError::kTruncated, 0);
  if (version != kVersion) return fail(LoadError::kBadVersion, 0);
  std::uint64_t payload_size = 0;
  if (!r.Get(payload_size)) return fail(LoadError::kTruncated, 0);
  if (payload_size > kMaxPayload) return fail(LoadError::kBadEnum, 0);

  std::string bytes(payload_size, '\0');
  if (payload_size > 0 && !r.GetRaw(bytes.data(), bytes.size())) {
    return fail(LoadError::kTruncated, 0);
  }
  std::uint32_t crc = 0;
  if (!r.Get(crc)) return fail(LoadError::kTruncated, 0);
  if (crc != util::Crc32(bytes.data(), bytes.size())) {
    return fail(LoadError::kBadChecksum, 0);
  }

  // The payload is CRC-clean; parse it.  Field errors past this point are
  // reported with offsets relative to the whole file.
  std::istringstream payload(bytes);
  io::Reader pr(payload);
  const std::uint64_t payload_base = 4 + 4 + 8;
  const auto pfail = [&](LoadError error, std::uint64_t record) {
    d.error = error;
    d.byte_offset = payload_base + pr.offset();
    d.event_index = record;
    return std::nullopt;
  };

  Checkpoint out;
  std::int64_t time = 0;
  std::uint32_t peer_count = 0;
  if (!pr.Get(time) || !pr.Get(out.event_offset) || !pr.Get(peer_count)) {
    return pfail(LoadError::kTruncated, 0);
  }
  out.time = time;
  std::uint64_t record = 0;
  for (std::uint32_t p = 0; p < peer_count; ++p) {
    Checkpoint::PeerTable table;
    std::uint32_t addr = 0;
    std::uint8_t stale = 0;
    std::uint64_t route_count = 0;
    if (!pr.Get(addr) || !pr.Get(stale) || !pr.Get(route_count)) {
      return pfail(LoadError::kTruncated, record);
    }
    if (stale > 1) return pfail(LoadError::kBadEnum, record);
    table.peer = bgp::Ipv4Addr(addr);
    table.stale = stale != 0;
    table.routes.reserve(
        static_cast<std::size_t>(std::min<std::uint64_t>(route_count, 1024)));
    for (std::uint64_t k = 0; k < route_count; ++k, ++record) {
      std::uint32_t prefix_addr = 0;
      std::uint8_t prefix_len = 0;
      if (!pr.Get(prefix_addr) || !pr.Get(prefix_len)) {
        return pfail(LoadError::kTruncated, record);
      }
      if (prefix_len > 32) return pfail(LoadError::kBadEnum, record);
      bgp::PathAttributes attrs;
      if (const LoadError err = io::GetAttrs(pr, attrs);
          err != LoadError::kNone) {
        return pfail(err, record);
      }
      table.routes.emplace_back(
          bgp::Prefix(bgp::Ipv4Addr(prefix_addr), prefix_len),
          std::move(attrs));
    }
    out.peers.push_back(std::move(table));
  }
  if (payload.peek() != std::istringstream::traits_type::eof()) {
    return pfail(LoadError::kBadEnum, record);  // trailing payload bytes
  }
  return out;
}

bool WriteCheckpointFile(const Checkpoint& checkpoint,
                         const std::string& path) {
  obs::TraceSpan span("checkpoint.write");
  span.Annotate("routes", static_cast<std::uint64_t>(checkpoint.RouteCount()));
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os || !SaveCheckpoint(checkpoint, os)) return false;
    const auto pos = os.tellp();
    if (pos > 0) {
      RANOMALY_METRIC_COUNT("checkpoint_bytes_written_total",
                            static_cast<std::uint64_t>(pos));
    }
    os.flush();
    if (!os) return false;
  }
  RANOMALY_METRIC_COUNT("checkpoint_writes_total", 1);
  // Atomic replace: readers see the old file or the new one, never a
  // partial write.
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

std::optional<Checkpoint> ReadCheckpointFile(const std::string& path,
                                             LoadDiagnostics* diag) {
  obs::TraceSpan span("checkpoint.read");
  std::ifstream is(path, std::ios::binary);
  if (!is) {
    if (diag) {
      *diag = LoadDiagnostics{};
      diag->error = LoadError::kTruncated;
    }
    RANOMALY_METRIC_COUNT("checkpoint_load_errors_total", 1);
    return std::nullopt;
  }
  auto checkpoint = LoadCheckpoint(is, diag);
  if (!checkpoint) {
    RANOMALY_METRIC_COUNT("checkpoint_load_errors_total", 1);
    if (diag) {
      RANOMALY_LOG(util::LogLevel::kWarn,
                   util::StrPrintf("checkpoint: refusing %s: %s", path.c_str(),
                                   diag->ToString().c_str()));
    }
    return checkpoint;
  }
  RANOMALY_METRIC_COUNT("checkpoint_loads_total", 1);
  span.Annotate("routes",
                static_cast<std::uint64_t>(checkpoint->RouteCount()));
  return checkpoint;
}

}  // namespace ranomaly::collector
