#include "collector/binary_io.h"

#include <cstring>
#include <istream>
#include <ostream>

namespace ranomaly::collector {
namespace {

constexpr char kMagic[4] = {'R', 'N', 'E', '1'};

template <typename T>
void Put(std::ostream& os, T value) {
  // Serialize little-endian regardless of host order.
  unsigned char buf[sizeof(T)];
  auto u = static_cast<std::uint64_t>(value);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(u & 0xff);
    u >>= 8;
  }
  os.write(reinterpret_cast<const char*>(buf), sizeof(T));
}

template <typename T>
bool Get(std::istream& is, T& value) {
  unsigned char buf[sizeof(T)];
  if (!is.read(reinterpret_cast<char*>(buf), sizeof(T))) return false;
  std::uint64_t u = 0;
  for (std::size_t i = sizeof(T); i-- > 0;) {
    u = (u << 8) | buf[i];
  }
  value = static_cast<T>(u);
  return true;
}

}  // namespace

bool SaveBinary(const EventStream& stream, std::ostream& os) {
  os.write(kMagic, sizeof(kMagic));
  Put<std::uint64_t>(os, stream.size());
  for (const bgp::Event& e : stream.events()) {
    Put<std::int64_t>(os, e.time);
    Put<std::uint32_t>(os, e.peer.value());
    Put<std::uint8_t>(os, static_cast<std::uint8_t>(e.type));
    Put<std::uint32_t>(os, e.prefix.addr().value());
    Put<std::uint8_t>(os, e.prefix.length());
    Put<std::uint32_t>(os, e.attrs.nexthop.value());
    Put<std::uint8_t>(os, static_cast<std::uint8_t>(e.attrs.origin));
    Put<std::uint32_t>(os, e.attrs.local_pref);
    Put<std::uint8_t>(os, e.attrs.med ? 1 : 0);
    if (e.attrs.med) Put<std::uint32_t>(os, *e.attrs.med);
    Put<std::uint32_t>(os, e.attrs.originator_id);
    Put<std::uint16_t>(os, static_cast<std::uint16_t>(e.attrs.as_path.Length()));
    for (const bgp::AsNumber a : e.attrs.as_path.asns()) {
      Put<std::uint32_t>(os, a);
    }
    Put<std::uint16_t>(os,
                       static_cast<std::uint16_t>(e.attrs.communities.size()));
    for (const bgp::Community c : e.attrs.communities) {
      Put<std::uint32_t>(os, c.raw());
    }
  }
  return static_cast<bool>(os);
}

std::optional<EventStream> LoadBinary(std::istream& is) {
  char magic[4];
  if (!is.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return std::nullopt;
  }
  std::uint64_t count = 0;
  if (!Get(is, count)) return std::nullopt;

  EventStream stream;
  for (std::uint64_t i = 0; i < count; ++i) {
    bgp::Event e;
    std::int64_t time = 0;
    std::uint32_t peer = 0, addr = 0, nexthop = 0, local_pref = 0,
                  originator = 0;
    std::uint8_t type = 0, len = 0, origin = 0, has_med = 0;
    if (!Get(is, time) || !Get(is, peer) || !Get(is, type) || !Get(is, addr) ||
        !Get(is, len) || !Get(is, nexthop) || !Get(is, origin) ||
        !Get(is, local_pref) || !Get(is, has_med)) {
      return std::nullopt;
    }
    if (type > 1 || len > 32 || origin > 2 || has_med > 1) return std::nullopt;
    e.time = time;
    e.peer = bgp::Ipv4Addr(peer);
    e.type = static_cast<bgp::EventType>(type);
    e.prefix = bgp::Prefix(bgp::Ipv4Addr(addr), len);
    e.attrs.nexthop = bgp::Ipv4Addr(nexthop);
    e.attrs.origin = static_cast<bgp::Origin>(origin);
    e.attrs.local_pref = local_pref;
    if (has_med != 0) {
      std::uint32_t med = 0;
      if (!Get(is, med)) return std::nullopt;
      e.attrs.med = med;
    }
    if (!Get(is, originator)) return std::nullopt;
    e.attrs.originator_id = originator;

    std::uint16_t path_len = 0;
    if (!Get(is, path_len)) return std::nullopt;
    std::vector<bgp::AsNumber> asns;
    asns.reserve(path_len);
    for (std::uint16_t k = 0; k < path_len; ++k) {
      std::uint32_t a = 0;
      if (!Get(is, a)) return std::nullopt;
      asns.push_back(a);
    }
    e.attrs.as_path = bgp::AsPath(std::move(asns));

    std::uint16_t community_count = 0;
    if (!Get(is, community_count)) return std::nullopt;
    for (std::uint16_t k = 0; k < community_count; ++k) {
      std::uint32_t c = 0;
      if (!Get(is, c)) return std::nullopt;
      e.attrs.communities.Add(bgp::Community(c));
    }

    if (!stream.empty() && e.time < stream.back().time) return std::nullopt;
    stream.Append(std::move(e));
  }
  return stream;
}

}  // namespace ranomaly::collector
