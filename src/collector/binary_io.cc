#include "collector/binary_io.h"

#include <cstring>
#include <istream>
#include <ostream>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace ranomaly::collector {
namespace {

constexpr char kMagic[4] = {'R', 'N', 'E', '1'};
constexpr std::uint8_t kMaxEventType = 3;  // announce, withdraw, gap, resync

}  // namespace

namespace io {

bool Reader::GetRaw(char* buf, std::size_t n) {
  if (!is_.read(buf, static_cast<std::streamsize>(n))) return false;
  offset_ += n;
  return true;
}

LoadError GetAttrs(Reader& r, bgp::PathAttributes& attrs) {
  std::uint32_t nexthop = 0, local_pref = 0, originator = 0;
  std::uint8_t origin = 0, has_med = 0;
  if (!r.Get(nexthop) || !r.Get(origin) || !r.Get(local_pref) ||
      !r.Get(has_med)) {
    return LoadError::kTruncated;
  }
  if (origin > 2 || has_med > 1) return LoadError::kBadEnum;
  attrs.nexthop = bgp::Ipv4Addr(nexthop);
  attrs.origin = static_cast<bgp::Origin>(origin);
  attrs.local_pref = local_pref;
  if (has_med != 0) {
    std::uint32_t med = 0;
    if (!r.Get(med)) return LoadError::kTruncated;
    attrs.med = med;
  }
  if (!r.Get(originator)) return LoadError::kTruncated;
  attrs.originator_id = originator;

  std::uint16_t path_len = 0;
  if (!r.Get(path_len)) return LoadError::kTruncated;
  std::vector<bgp::AsNumber> asns;
  asns.reserve(path_len);
  for (std::uint16_t k = 0; k < path_len; ++k) {
    std::uint32_t a = 0;
    if (!r.Get(a)) return LoadError::kTruncated;
    asns.push_back(a);
  }
  attrs.as_path = bgp::AsPath(std::move(asns));

  std::uint16_t community_count = 0;
  if (!r.Get(community_count)) return LoadError::kTruncated;
  for (std::uint16_t k = 0; k < community_count; ++k) {
    std::uint32_t c = 0;
    if (!r.Get(c)) return LoadError::kTruncated;
    attrs.communities.Add(bgp::Community(c));
  }
  return LoadError::kNone;
}

LoadError GetEvent(Reader& r, bgp::Event& event) {
  std::int64_t time = 0;
  std::uint32_t peer = 0, addr = 0;
  std::uint8_t type = 0, len = 0;
  if (!r.Get(time) || !r.Get(peer) || !r.Get(type) || !r.Get(addr) ||
      !r.Get(len)) {
    return LoadError::kTruncated;
  }
  if (type > kMaxEventType || len > 32) return LoadError::kBadEnum;
  event.time = time;
  event.peer = bgp::Ipv4Addr(peer);
  event.type = static_cast<bgp::EventType>(type);
  event.prefix = bgp::Prefix(bgp::Ipv4Addr(addr), len);
  return GetAttrs(r, event.attrs);
}

}  // namespace io

const char* ToString(LoadError error) {
  switch (error) {
    case LoadError::kNone: return "ok";
    case LoadError::kBadMagic: return "bad magic";
    case LoadError::kTruncated: return "truncated";
    case LoadError::kBadEnum: return "bad enum or length field";
    case LoadError::kOutOfOrder: return "out-of-order timestamps";
    case LoadError::kBadVersion: return "unsupported format version";
    case LoadError::kBadChecksum: return "checksum mismatch";
  }
  return "?";
}

std::string LoadDiagnostics::ToString() const {
  return util::StrPrintf("%s at byte %llu (event %llu)",
                         collector::ToString(error),
                         static_cast<unsigned long long>(byte_offset),
                         static_cast<unsigned long long>(event_index));
}

bool SaveBinary(const EventStream& stream, std::ostream& os) {
  obs::TraceSpan span("collector.save_binary");
  span.Annotate("events", static_cast<std::uint64_t>(stream.size()));
  const auto begin = os.tellp();
  os.write(kMagic, sizeof(kMagic));
  io::Put<std::uint64_t>(os, stream.size());
  for (const bgp::Event& e : stream.events()) {
    io::PutEvent(os, e);
  }
  if (os) {
    RANOMALY_METRIC_COUNT("io_events_saved_total", stream.size());
    if (const auto end = os.tellp(); begin >= 0 && end > begin) {
      RANOMALY_METRIC_COUNT("io_bytes_written_total",
                            static_cast<std::uint64_t>(end - begin));
    }
  }
  return static_cast<bool>(os);
}

std::optional<EventStream> LoadBinary(std::istream& is, LoadDiagnostics& diag) {
  obs::TraceSpan span("collector.load_binary");
  io::Reader r(is);
  diag = LoadDiagnostics{};
  const auto fail = [&](LoadError error, std::uint64_t event_index) {
    diag.error = error;
    diag.byte_offset = r.offset();
    diag.event_index = event_index;
    RANOMALY_METRIC_COUNT("io_load_errors_total", 1);
    RANOMALY_METRIC_COUNT("io_bytes_read_total", r.offset());
    return std::nullopt;
  };

  char magic[4];
  if (!r.GetRaw(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return fail(LoadError::kBadMagic, 0);
  }
  std::uint64_t count = 0;
  if (!r.Get(count)) return fail(LoadError::kTruncated, 0);

  EventStream stream;
  for (std::uint64_t i = 0; i < count; ++i) {
    bgp::Event e;
    if (const LoadError err = io::GetEvent(r, e); err != LoadError::kNone) {
      return fail(err, i);
    }
    if (!stream.empty() && e.time < stream.back().time) {
      return fail(LoadError::kOutOfOrder, i);
    }
    stream.Append(std::move(e));
  }
  span.Annotate("events", static_cast<std::uint64_t>(stream.size()));
  RANOMALY_METRIC_COUNT("io_events_loaded_total", stream.size());
  RANOMALY_METRIC_COUNT("io_bytes_read_total", r.offset());
  return stream;
}

std::optional<EventStream> LoadBinary(std::istream& is) {
  LoadDiagnostics diag;
  return LoadBinary(is, diag);
}

}  // namespace ranomaly::collector
