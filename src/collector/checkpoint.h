// Checkpoint/restore for the collector: periodic binary snapshots of the
// per-peer Adj-RIB-In plus the event-stream offset, so a restarted
// collector resumes with a warm RIB instead of a cold table transfer.
//
// File layout (versioned "RNC1" section, all integers little-endian):
//
//   file    := "RNC1" | u32 version(=1) | u64 payload_size | payload
//            | u32 crc32(payload)
//   payload := i64 checkpoint_time_us | u64 event_offset
//            | u32 peer_count | peer...
//   peer    := u32 addr | u8 stale | u64 route_count | route...
//   route   := u32 prefix_addr | u8 prefix_len | <attribute block>
//
// The attribute block is the RNE1 per-event attribute layout
// (binary_io.h io::PutAttrs/GetAttrs), so both formats evolve together.
// The CRC covers the payload only: a torn write or bit flip fails the
// restore loudly instead of resuming from a silently corrupt RIB.
// WriteCheckpointFile replaces the target atomically (write to a
// temporary sibling, then rename) so a crash mid-checkpoint always
// leaves either the old or the new snapshot, never a hybrid.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "collector/binary_io.h"
#include "collector/collector.h"

namespace ranomaly::collector {

struct Checkpoint {
  util::SimTime time = 0;          // when the snapshot was taken
  // How many events of the persisted stream precede this snapshot: a
  // restarted collector replays the stream file from this offset.
  std::uint64_t event_offset = 0;

  struct PeerTable {
    bgp::Ipv4Addr peer;
    bool stale = false;  // gap was open when the snapshot was taken
    std::vector<std::pair<bgp::Prefix, bgp::PathAttributes>> routes;
  };
  std::vector<PeerTable> peers;  // sorted by peer address

  std::size_t RouteCount() const;
};

// Captures the collector's current per-peer tables and staleness.
Checkpoint SnapshotCollector(const Collector& collector, util::SimTime now,
                             std::uint64_t event_offset);

// Warm-starts `collector` from the snapshot (no events are emitted; a
// restore is a resumption, not routing activity).  Peers that were stale
// at snapshot time are re-marked stale via a kFeedGap marker so the
// degradation survives the restart honestly.
void RestoreCollector(const Checkpoint& checkpoint, Collector& collector);

// Stream serialization; Save returns false on I/O failure, Load reports
// nullopt (with diagnostics if `diag` is non-null) on any validation
// failure: bad magic, unsupported version, truncation, CRC mismatch,
// impossible field values.
bool SaveCheckpoint(const Checkpoint& checkpoint, std::ostream& os);
std::optional<Checkpoint> LoadCheckpoint(std::istream& is,
                                         LoadDiagnostics* diag = nullptr);

// Atomic file variants: Write serializes to "<path>.tmp" and renames over
// `path` only after a clean flush.
bool WriteCheckpointFile(const Checkpoint& checkpoint,
                         const std::string& path);
std::optional<Checkpoint> ReadCheckpointFile(const std::string& path,
                                             LoadDiagnostics* diag = nullptr);

}  // namespace ranomaly::collector
