// Checkpoint/restore for the collector: periodic binary snapshots of the
// per-peer Adj-RIB-In plus the event-stream offset, so a restarted
// collector resumes with a warm RIB instead of a cold table transfer.
//
// File layout (versioned "RNC1" section, all integers little-endian):
//
//   file     := "RNC1" | u32 version(=1|2) | u64 payload_size | payload
//             | u32 crc32(payload)
//   payload  := i64 checkpoint_time_us | u64 event_offset
//             | u32 peer_count | peer...
//             | [v2 only: u32 section_count | section...]
//   peer     := u32 addr | u8 stale | u64 route_count | route...
//   route    := u32 prefix_addr | u8 prefix_len | <attribute block>
//   section  := char[4] tag | u64 byte_count | bytes
//
// Version 1 is the collector-only snapshot; version 2 appends a table of
// named sections carrying opaque subsystem state (the live analysis tier
// persists its pipeline state there, core/live_checkpoint.h).  A
// checkpoint without sections is still written as version 1, so
// collector-only snapshots remain byte-identical to the PR 1 format.
// Section tags are four printable ASCII bytes; readers must reject
// unknown *versions* but preserve unknown *sections* (forward-compatible
// sidecars).  docs/FORMATS.md states the version-bump rules.
//
// The attribute block is the RNE1 per-event attribute layout
// (binary_io.h io::PutAttrs/GetAttrs), so both formats evolve together.
// The CRC covers the payload only: a torn write or bit flip fails the
// restore loudly instead of resuming from a silently corrupt RIB.
// WriteCheckpointFile replaces the target atomically and durably (write
// to a temporary sibling, fsync the file, rename, fsync the directory)
// so a crash or power loss mid-checkpoint always leaves either the old
// or the new snapshot on disk, never a hybrid or a zero-length commit.
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "collector/binary_io.h"
#include "collector/collector.h"

namespace ranomaly::collector {

struct Checkpoint {
  util::SimTime time = 0;          // when the snapshot was taken
  // How many events of the persisted stream precede this snapshot: a
  // restarted collector replays the stream file from this offset.
  std::uint64_t event_offset = 0;

  struct PeerTable {
    bgp::Ipv4Addr peer;
    bool stale = false;  // gap was open when the snapshot was taken
    std::vector<std::pair<bgp::Prefix, bgp::PathAttributes>> routes;
  };
  std::vector<PeerTable> peers;  // sorted by peer address

  // Named opaque state blobs (version 2).  The checkpoint layer frames
  // and CRC-protects them; their contents belong to the owning subsystem
  // (which must validate on decode — never a silent partial restore).
  struct Section {
    std::string tag;    // exactly 4 printable ASCII bytes, e.g. "LIVE"
    std::string bytes;  // opaque payload
  };
  std::vector<Section> sections;

  // Returns the section with `tag`, or nullptr.
  const Section* FindSection(std::string_view tag) const;

  std::size_t RouteCount() const;
};

// Captures the collector's current per-peer tables and staleness.
Checkpoint SnapshotCollector(const Collector& collector, util::SimTime now,
                             std::uint64_t event_offset);

// Warm-starts `collector` from the snapshot (no events are emitted; a
// restore is a resumption, not routing activity).  Peers that were stale
// at snapshot time are re-marked stale via a kFeedGap marker so the
// degradation survives the restart honestly.
void RestoreCollector(const Checkpoint& checkpoint, Collector& collector);

// Stream serialization; Save returns false on I/O failure, Load reports
// nullopt (with diagnostics if `diag` is non-null) on any validation
// failure: bad magic, unsupported version, truncation, CRC mismatch,
// impossible field values.
bool SaveCheckpoint(const Checkpoint& checkpoint, std::ostream& os);
std::optional<Checkpoint> LoadCheckpoint(std::istream& is,
                                         LoadDiagnostics* diag = nullptr);

// Atomic durable file variants: Write serializes to "<path>.tmp", fsyncs
// it, renames over `path`, and fsyncs the containing directory; a failure
// at any step leaves the previous checkpoint intact and returns false.
bool WriteCheckpointFile(const Checkpoint& checkpoint,
                         const std::string& path);
std::optional<Checkpoint> ReadCheckpointFile(const std::string& path,
                                             LoadDiagnostics* diag = nullptr);

// Fault injection for checkpoint writes (chaos harness / tests).  The
// hook sees the serialized size and returns how many bytes to actually
// write before simulating an I/O failure (< size), or -1 to let the
// write proceed.  A short write fails the commit: the temp file is
// removed and the previous checkpoint survives.  Returns the previous
// hook; pass nullptr to clear.  The RANOMALY_CHAOS_CHECKPOINT
// environment variable ("<fail_probability>:<seed>") installs a seeded
// hook on first use, so the chaos harness can inject short-write /
// disk-full faults into an unmodified binary.
using CheckpointWriteFaultHook =
    std::function<std::int64_t(std::size_t total_bytes)>;
CheckpointWriteFaultHook SetCheckpointWriteFaultHook(
    CheckpointWriteFaultHook hook);

}  // namespace ranomaly::collector
