#include "collector/collector.h"

#include <algorithm>
#include <unordered_set>

#include "obs/metrics.h"
#include "util/log.h"
#include "util/strings.h"

namespace ranomaly::collector {

void Collector::AttachTo(net::Simulator& sim,
                         const std::vector<net::RouterIndex>& routers) {
  for (const net::RouterIndex r : routers) {
    const bgp::Ipv4Addr peer_addr = sim.topology().router(r).address;
    rib_.try_emplace(peer_addr);  // register the peer even before events
    health_.try_emplace(peer_addr);
    sim.AddBestPathTap(r, [this, peer_addr](
                              const net::BestPathChangeView& view) {
      // What the iBGP session carries: the router's new best route if it
      // is advertisable over iBGP, otherwise a withdrawal of whatever we
      // previously heard.  Old attributes are NOT on the wire — we
      // reconstruct them from our Adj-RIB-In, exactly as REX does.
      if (view.new_advertisable) {
        OnAnnounce(view.time, peer_addr, view.prefix, view.new_best->attrs);
      } else if (view.old_advertisable) {
        OnWithdraw(view.time, peer_addr, view.prefix);
      }
    });
  }
}

util::SimTime Collector::Clamp(util::SimTime time) const {
  if (!events_.empty() && time < events_.back().time) {
    return events_.back().time;
  }
  return time;
}

PeerHealth& Collector::HealthOf(bgp::Ipv4Addr peer) {
  return health_.try_emplace(peer).first->second;
}

void Collector::OnAnnounce(util::SimTime time, bgp::Ipv4Addr peer,
                           const bgp::Prefix& prefix,
                           bgp::PathAttributes attrs) {
  time = Clamp(time);
  rib_[peer].Announce(prefix, attrs);
  PeerHealth& health = HealthOf(peer);
  ++health.announces;
  health.last_event = time;
  bgp::Event event;
  event.time = time;
  event.ingest_tick = time;  // raw arrival = ingest for collector-built streams
  event.peer = peer;
  event.type = bgp::EventType::kAnnounce;
  event.prefix = prefix;
  event.attrs = std::move(attrs);
  events_.Append(std::move(event));
  RANOMALY_METRIC_COUNT("collector_events_total", 1);
  RANOMALY_METRIC_COUNT("collector_announces_total", 1);
}

void Collector::OnWithdraw(util::SimTime time, bgp::Ipv4Addr peer,
                           const bgp::Prefix& prefix) {
  time = Clamp(time);
  PeerHealth& health = HealthOf(peer);
  auto old = rib_[peer].Withdraw(prefix);
  if (!old) {
    // Can't augment a withdrawal for a route we never saw.
    ++unmatched_withdrawals_;
    ++health.unmatched_withdrawals;
    RANOMALY_METRIC_COUNT("collector_unmatched_withdrawals_total", 1);
    RANOMALY_LOG_EVERY_N(
        util::LogLevel::kWarn, 1000,
        util::StrPrintf("collector: unmatched withdrawal from %s for %s",
                        peer.ToString().c_str(), prefix.ToString().c_str()));
    return;
  }
  ++health.withdraws;
  health.last_event = time;
  bgp::Event event;
  event.time = time;
  event.ingest_tick = time;  // raw arrival = ingest for collector-built streams
  event.peer = peer;
  event.type = bgp::EventType::kWithdraw;
  event.prefix = prefix;
  event.attrs = std::move(*old);  // the REX augmentation
  events_.Append(std::move(event));
  RANOMALY_METRIC_COUNT("collector_events_total", 1);
  RANOMALY_METRIC_COUNT("collector_withdraws_total", 1);
}

void Collector::OnMarker(util::SimTime time, bgp::Ipv4Addr peer,
                         bgp::EventType type) {
  if (!bgp::IsMarker(type)) return;
  time = Clamp(time);
  PeerHealth& health = HealthOf(peer);
  if (type == bgp::EventType::kFeedGap) {
    if (health.stale) return;  // gap already open; don't double-mark
    health.stale = true;
    ++health.feed_gaps;
    RANOMALY_METRIC_COUNT("collector_feed_gaps_total", 1);
  } else {
    if (!health.stale) return;  // resync without a gap: nothing to mark
    health.stale = false;
    ++health.resyncs;
    RANOMALY_METRIC_COUNT("collector_resyncs_total", 1);
  }
  RANOMALY_METRIC_COUNT("collector_events_total", 1);
  health.last_event = time;
  bgp::Event event;
  event.time = time;
  event.ingest_tick = time;  // raw arrival = ingest for collector-built streams
  event.peer = peer;
  event.type = type;
  events_.Append(std::move(event));
}

std::vector<RouteEntry> Collector::Snapshot() const {
  std::vector<RouteEntry> out;
  for (const auto& [peer, adj_in] : rib_) {
    for (const auto& [prefix, attrs] : adj_in) {
      out.push_back(RouteEntry{peer, prefix, attrs});
    }
  }
  return out;
}

std::vector<std::pair<bgp::Prefix, bgp::PathAttributes>>
Collector::PeerRoutes(bgp::Ipv4Addr peer) const {
  std::vector<std::pair<bgp::Prefix, bgp::PathAttributes>> out;
  const auto it = rib_.find(peer);
  if (it == rib_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& [prefix, attrs] : it->second) {
    out.emplace_back(prefix, attrs);
  }
  return out;
}

std::vector<bgp::Ipv4Addr> Collector::Peers() const {
  std::vector<bgp::Ipv4Addr> out;
  out.reserve(rib_.size());
  for (const auto& [peer, adj_in] : rib_) out.push_back(peer);
  std::sort(out.begin(), out.end(),
            [](bgp::Ipv4Addr a, bgp::Ipv4Addr b) {
              return a.value() < b.value();
            });
  return out;
}

void Collector::RestoreRib(
    bgp::Ipv4Addr peer,
    std::vector<std::pair<bgp::Prefix, bgp::PathAttributes>> routes) {
  bgp::AdjRibIn& adj_in = rib_[peer];
  adj_in.Clear();
  for (auto& [prefix, attrs] : routes) {
    adj_in.Announce(prefix, std::move(attrs));
  }
  HealthOf(peer).routes = adj_in.size();
}

std::size_t Collector::RouteCount() const {
  std::size_t n = 0;
  for (const auto& [peer, adj_in] : rib_) n += adj_in.size();
  return n;
}

std::size_t Collector::PrefixCount() const {
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> prefixes;
  for (const auto& [peer, adj_in] : rib_) {
    for (const auto& [prefix, attrs] : adj_in) prefixes.insert(prefix);
  }
  return prefixes.size();
}

std::size_t Collector::NexthopCount() const {
  std::unordered_set<bgp::Ipv4Addr, bgp::Ipv4Hash> nexthops;
  for (const auto& [peer, adj_in] : rib_) {
    for (const auto& [prefix, attrs] : adj_in) {
      nexthops.insert(attrs.nexthop);
    }
  }
  return nexthops.size();
}

bool Collector::IsPeerStale(bgp::Ipv4Addr peer) const {
  const auto it = health_.find(peer);
  return it != health_.end() && it->second.stale;
}

CollectorHealth Collector::Health() const {
  CollectorHealth out;
  out.events = events_.size();
  out.unmatched_withdrawals = unmatched_withdrawals_;
  const util::SimDuration range = events_.TimeRange();
  if (range > 0) {
    out.events_per_sec =
        static_cast<double>(events_.size()) / util::ToSeconds(range);
    // Busiest second of the stream, via the shared binning machinery.
    const util::RateSeries rate = events_.Rate(util::kSecond);
    std::uint64_t peak = 0;
    for (const std::uint64_t b : rate.buckets()) peak = std::max(peak, b);
    out.peak_events_per_sec = static_cast<double>(peak);
  }
  out.peers = health_;
  for (auto& [peer, health] : out.peers) {
    const auto it = rib_.find(peer);
    health.routes = it == rib_.end() ? 0 : it->second.size();
    if (health.stale) ++out.stale_peers;
  }
  return out;
}

std::string CollectorHealth::ToString() const {
  std::string out = util::StrPrintf(
      "events=%llu rate=%.1f/s peak=%.0f/s unmatched=%llu "
      "treat-as-withdraw=%llu decode-errors=%llu quarantine=%zu/%llu "
      "stale-peers=%zu\n",
      static_cast<unsigned long long>(events), events_per_sec,
      peak_events_per_sec, static_cast<unsigned long long>(
          unmatched_withdrawals),
      static_cast<unsigned long long>(treat_as_withdraw),
      static_cast<unsigned long long>(decode_errors), quarantine_depth,
      static_cast<unsigned long long>(quarantined_total), stale_peers);
  // Stable output order for tests and operators.
  std::vector<bgp::Ipv4Addr> order;
  order.reserve(peers.size());
  for (const auto& [peer, health] : peers) order.push_back(peer);
  std::sort(order.begin(), order.end(),
            [](bgp::Ipv4Addr a, bgp::Ipv4Addr b) {
              return a.value() < b.value();
            });
  for (const bgp::Ipv4Addr peer : order) {
    const PeerHealth& h = peers.at(peer);
    out += util::StrPrintf(
        "  %s routes=%zu A=%llu W=%llu unmatched=%llu gaps=%llu resyncs=%llu "
        "errors=%llu taw=%llu%s\n",
        peer.ToString().c_str(), h.routes,
        static_cast<unsigned long long>(h.announces),
        static_cast<unsigned long long>(h.withdraws),
        static_cast<unsigned long long>(h.unmatched_withdrawals),
        static_cast<unsigned long long>(h.feed_gaps),
        static_cast<unsigned long long>(h.resyncs),
        static_cast<unsigned long long>(h.decode_errors),
        static_cast<unsigned long long>(h.treat_as_withdraw),
        h.stale ? " STALE" : "");
  }
  return out;
}

}  // namespace ranomaly::collector
