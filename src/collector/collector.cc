#include "collector/collector.h"

#include <unordered_set>

namespace ranomaly::collector {

void Collector::AttachTo(net::Simulator& sim,
                         const std::vector<net::RouterIndex>& routers) {
  for (const net::RouterIndex r : routers) {
    const bgp::Ipv4Addr peer_addr = sim.topology().router(r).address;
    rib_.try_emplace(peer_addr);  // register the peer even before events
    sim.AddBestPathTap(r, [this, peer_addr](
                              const net::BestPathChangeView& view) {
      // What the iBGP session carries: the router's new best route if it
      // is advertisable over iBGP, otherwise a withdrawal of whatever we
      // previously heard.  Old attributes are NOT on the wire — we
      // reconstruct them from our Adj-RIB-In, exactly as REX does.
      if (view.new_advertisable) {
        OnAnnounce(view.time, peer_addr, view.prefix, view.new_best->attrs);
      } else if (view.old_advertisable) {
        OnWithdraw(view.time, peer_addr, view.prefix);
      }
    });
  }
}

void Collector::OnAnnounce(util::SimTime time, bgp::Ipv4Addr peer,
                           const bgp::Prefix& prefix,
                           bgp::PathAttributes attrs) {
  rib_[peer].Announce(prefix, attrs);
  bgp::Event event;
  event.time = time;
  event.peer = peer;
  event.type = bgp::EventType::kAnnounce;
  event.prefix = prefix;
  event.attrs = std::move(attrs);
  events_.Append(std::move(event));
}

void Collector::OnWithdraw(util::SimTime time, bgp::Ipv4Addr peer,
                           const bgp::Prefix& prefix) {
  auto old = rib_[peer].Withdraw(prefix);
  if (!old) {
    // Can't augment a withdrawal for a route we never saw.
    ++unmatched_withdrawals_;
    return;
  }
  bgp::Event event;
  event.time = time;
  event.peer = peer;
  event.type = bgp::EventType::kWithdraw;
  event.prefix = prefix;
  event.attrs = std::move(*old);  // the REX augmentation
  events_.Append(std::move(event));
}

std::vector<RouteEntry> Collector::Snapshot() const {
  std::vector<RouteEntry> out;
  for (const auto& [peer, adj_in] : rib_) {
    for (const auto& [prefix, attrs] : adj_in) {
      out.push_back(RouteEntry{peer, prefix, attrs});
    }
  }
  return out;
}

std::size_t Collector::RouteCount() const {
  std::size_t n = 0;
  for (const auto& [peer, adj_in] : rib_) n += adj_in.size();
  return n;
}

std::size_t Collector::PrefixCount() const {
  std::unordered_set<bgp::Prefix, bgp::PrefixHash> prefixes;
  for (const auto& [peer, adj_in] : rib_) {
    for (const auto& [prefix, attrs] : adj_in) prefixes.insert(prefix);
  }
  return prefixes.size();
}

std::size_t Collector::NexthopCount() const {
  std::unordered_set<bgp::Ipv4Addr, bgp::Ipv4Hash> nexthops;
  for (const auto& [peer, adj_in] : rib_) {
    for (const auto& [prefix, attrs] : adj_in) {
      nexthops.insert(attrs.nexthop);
    }
  }
  return nexthops.size();
}

}  // namespace ranomaly::collector
