// The passive route collector ("REX" in the paper, Section II).
//
// The collector iBGP-peers with a site's BGP edge routers (or an ISP's
// core route reflectors) and sees what any other member of the iBGP mesh
// would see: each monitored router's best-path announcements and
// withdrawals.  Plain BGP withdrawals carry no attributes, so the
// collector keeps an Adj-RIB-In per monitored peer and augments each
// withdrawal with the route's last known attributes — producing the
// *event stream* that TAMP and Stemming consume.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/prefix.h"
#include "bgp/rib.h"
#include "collector/event_stream.h"
#include "net/simulator.h"
#include "util/stats.h"

namespace ranomaly::collector {

// One current route held by the collector: the row format TAMP maps.
struct RouteEntry {
  bgp::Ipv4Addr peer;  // the monitored edge router / route reflector
  bgp::Prefix prefix;
  bgp::PathAttributes attrs;
};

class Collector {
 public:
  Collector() = default;

  // Subscribes to best-path changes of `routers` inside the simulator.
  // The returned taps live as long as the simulator; the collector must
  // outlive it or be detached by destroying the simulator first.
  void AttachTo(net::Simulator& sim,
                const std::vector<net::RouterIndex>& routers);

  // Raw feed interface (what the wire gives us): an announcement with new
  // attributes, or a bare withdrawal that we augment from our Adj-RIB-In.
  void OnAnnounce(util::SimTime time, bgp::Ipv4Addr peer,
                  const bgp::Prefix& prefix, bgp::PathAttributes attrs);
  void OnWithdraw(util::SimTime time, bgp::Ipv4Addr peer,
                  const bgp::Prefix& prefix);

  const EventStream& events() const { return events_; }
  EventStream& mutable_events() { return events_; }

  // Snapshot of all current routes across monitored peers (TAMP input).
  std::vector<RouteEntry> Snapshot() const;

  // Current route/prefix counts (the paper quotes "23,000 routes,
  // ~12,600 prefixes" for Berkeley).
  std::size_t RouteCount() const;
  std::size_t PrefixCount() const;
  std::size_t PeerCount() const { return rib_.size(); }

  // Distinct BGP nexthops across all current routes.
  std::size_t NexthopCount() const;

  // How many withdrawals arrived for prefixes we had no route for (these
  // cannot be augmented and are dropped — counts should stay ~0 in a
  // healthy feed).
  std::uint64_t unmatched_withdrawals() const { return unmatched_withdrawals_; }

 private:
  std::unordered_map<bgp::Ipv4Addr, bgp::AdjRibIn, bgp::Ipv4Hash> rib_;
  EventStream events_;
  std::uint64_t unmatched_withdrawals_ = 0;
};

}  // namespace ranomaly::collector
