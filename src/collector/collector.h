// The passive route collector ("REX" in the paper, Section II).
//
// The collector iBGP-peers with a site's BGP edge routers (or an ISP's
// core route reflectors) and sees what any other member of the iBGP mesh
// would see: each monitored router's best-path announcements and
// withdrawals.  Plain BGP withdrawals carry no attributes, so the
// collector keeps an Adj-RIB-In per monitored peer and augments each
// withdrawal with the route's last known attributes — producing the
// *event stream* that TAMP and Stemming consume.
//
// Fault tolerance: the collector never throws on degraded input.  Event
// timestamps are clamped monotonic (a skewed or reordered feed yields a
// slightly-wrong-but-ordered stream instead of an abort), feed outages
// are recorded as explicit kFeedGap/kResync markers, and per-peer health
// counters (CollectorHealth) expose every way the feed has misbehaved.
// Session supervision, wire decoding and quarantine live one layer up in
// FeedSupervisor (supervisor.h).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/prefix.h"
#include "bgp/rib.h"
#include "collector/event_stream.h"
#include "net/simulator.h"
#include "util/stats.h"

namespace ranomaly::collector {

// One current route held by the collector: the row format TAMP maps.
struct RouteEntry {
  bgp::Ipv4Addr peer;  // the monitored edge router / route reflector
  bgp::Prefix prefix;
  bgp::PathAttributes attrs;
};

// Liveness/quality counters for one monitored peer's feed.  The decode
// and quarantine fields are owned by the FeedSupervisor and merged into
// its Health() view; a bare Collector leaves them zero.
struct PeerHealth {
  std::uint64_t announces = 0;
  std::uint64_t withdraws = 0;
  std::uint64_t unmatched_withdrawals = 0;
  std::uint64_t feed_gaps = 0;  // kFeedGap markers emitted
  std::uint64_t resyncs = 0;    // kResync markers emitted
  std::uint64_t decode_errors = 0;       // frames quarantined (supervisor)
  std::uint64_t treat_as_withdraw = 0;   // RFC 7606 downgrades (supervisor)
  bool stale = false;           // gap open: routes may be out of date
  util::SimTime last_event = 0;
  std::size_t routes = 0;       // current Adj-RIB-In size
};

// The operator-facing health snapshot (ISSUE: events/sec, quarantine
// depth, unmatched withdrawals, staleness per peer).
struct CollectorHealth {
  std::uint64_t events = 0;
  double events_per_sec = 0.0;       // mean over the stream's time range
  double peak_events_per_sec = 0.0;  // busiest 1-second bucket
  std::uint64_t unmatched_withdrawals = 0;
  std::uint64_t treat_as_withdraw = 0;
  std::uint64_t decode_errors = 0;
  std::size_t quarantine_depth = 0;   // frames currently held (supervisor)
  std::uint64_t quarantined_total = 0;
  std::size_t stale_peers = 0;
  std::unordered_map<bgp::Ipv4Addr, PeerHealth, bgp::Ipv4Hash> peers;

  // Multi-line operator rendering (used by the CLI and tests).
  std::string ToString() const;
};

class Collector {
 public:
  Collector() = default;

  // Subscribes to best-path changes of `routers` inside the simulator.
  // The returned taps live as long as the simulator; the collector must
  // outlive it or be detached by destroying the simulator first.
  void AttachTo(net::Simulator& sim,
                const std::vector<net::RouterIndex>& routers);

  // Raw feed interface (what the wire gives us): an announcement with new
  // attributes, or a bare withdrawal that we augment from our Adj-RIB-In.
  // Timestamps are clamped to be monotonic with the stream.
  void OnAnnounce(util::SimTime time, bgp::Ipv4Addr peer,
                  const bgp::Prefix& prefix, bgp::PathAttributes attrs);
  void OnWithdraw(util::SimTime time, bgp::Ipv4Addr peer,
                  const bgp::Prefix& prefix);

  // Appends a collection-layer marker (kFeedGap or kResync) for `peer`
  // and updates the peer's staleness.  Other event types are ignored.
  void OnMarker(util::SimTime time, bgp::Ipv4Addr peer, bgp::EventType type);

  const EventStream& events() const { return events_; }
  EventStream& mutable_events() { return events_; }

  // Snapshot of all current routes across monitored peers (TAMP input).
  std::vector<RouteEntry> Snapshot() const;

  // The current Adj-RIB-In rows for one peer (checkpointing, resync).
  std::vector<std::pair<bgp::Prefix, bgp::PathAttributes>> PeerRoutes(
      bgp::Ipv4Addr peer) const;

  // All peers the collector has registered (even if currently routeless).
  std::vector<bgp::Ipv4Addr> Peers() const;

  // Warm-start: installs `routes` as `peer`'s Adj-RIB-In without emitting
  // events (checkpoint restore is a resumption, not routing activity).
  // Replaces whatever the peer's table held.
  void RestoreRib(bgp::Ipv4Addr peer,
                  std::vector<std::pair<bgp::Prefix, bgp::PathAttributes>>
                      routes);

  // Current route/prefix counts (the paper quotes "23,000 routes,
  // ~12,600 prefixes" for Berkeley).
  std::size_t RouteCount() const;
  std::size_t PrefixCount() const;
  std::size_t PeerCount() const { return rib_.size(); }

  // Distinct BGP nexthops across all current routes.
  std::size_t NexthopCount() const;

  // How many withdrawals arrived for prefixes we had no route for (these
  // cannot be augmented and are dropped — counts should stay ~0 in a
  // healthy feed).
  std::uint64_t unmatched_withdrawals() const { return unmatched_withdrawals_; }

  // True while `peer` has an open feed gap (routes possibly stale).
  bool IsPeerStale(bgp::Ipv4Addr peer) const;

  // Health snapshot over everything the collector has seen.  The
  // supervisor's Health() extends this with quarantine/session state.
  CollectorHealth Health() const;

 private:
  // Clamps `time` so the stream stays monotonic even under clock skew or
  // reordering faults (degraded-but-ordered beats an abort).
  util::SimTime Clamp(util::SimTime time) const;

  PeerHealth& HealthOf(bgp::Ipv4Addr peer);

  std::unordered_map<bgp::Ipv4Addr, bgp::AdjRibIn, bgp::Ipv4Hash> rib_;
  std::unordered_map<bgp::Ipv4Addr, PeerHealth, bgp::Ipv4Hash> health_;
  EventStream events_;
  std::uint64_t unmatched_withdrawals_ = 0;
};

}  // namespace ranomaly::collector
