#include "collector/feed.h"

#include <algorithm>
#include <utility>

namespace ranomaly::collector {

void SortFeed(std::vector<FeedOp>& ops) {
  std::stable_sort(ops.begin(), ops.end(),
                   [](const FeedOp& a, const FeedOp& b) {
                     return a.time < b.time;
                   });
}

void ApplyFeed(Collector& collector, std::vector<FeedOp>&& ops) {
  for (FeedOp& op : ops) {
    switch (op.type) {
      case bgp::EventType::kAnnounce:
        collector.OnAnnounce(op.time, op.peer, op.prefix,
                             std::move(op.attrs));
        break;
      case bgp::EventType::kWithdraw:
        collector.OnWithdraw(op.time, op.peer, op.prefix);
        break;
      case bgp::EventType::kFeedGap:
      case bgp::EventType::kResync:
        collector.OnMarker(op.time, op.peer, op.type);
        break;
    }
  }
  ops.clear();
  ops.shrink_to_fit();
}

}  // namespace ranomaly::collector
