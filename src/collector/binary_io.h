// Compact binary persistence for event streams.
//
// The text format (Fig 4 lines) is greppable but ~120 bytes/event; a
// month-long ISP capture is tens of millions of events, where the binary
// format's ~30-40 bytes/event and parse-free loading matter.  Layout:
//
//   header:  magic "RNE1" | u64 event count
//   event:   i64 time | u32 peer | u8 type | u32 prefix addr | u8 len
//          | u32 nexthop | u8 origin | u32 local_pref
//          | u8 has_med [u32 med] | u32 originator
//          | u16 path length | u32 asn...
//          | u16 community count | u32 community...
//
// All integers little-endian.  Loading validates the magic, the declared
// count, every enum value and length field, and fails cleanly on
// truncation.
#pragma once

#include <iosfwd>
#include <optional>

#include "collector/event_stream.h"

namespace ranomaly::collector {

// Writes the stream; returns false on stream I/O failure.
bool SaveBinary(const EventStream& stream, std::ostream& os);

// Reads a stream; nullopt on any framing/validation error.
std::optional<EventStream> LoadBinary(std::istream& is);

}  // namespace ranomaly::collector
