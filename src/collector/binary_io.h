// Compact binary persistence for event streams.
//
// The text format (Fig 4 lines) is greppable but ~120 bytes/event; a
// month-long ISP capture is tens of millions of events, where the binary
// format's ~30-40 bytes/event and parse-free loading matter.  Layout:
//
//   header:  magic "RNE1" | u64 event count
//   event:   i64 time | u32 peer | u8 type | u32 prefix addr | u8 len
//          | u32 nexthop | u8 origin | u32 local_pref
//          | u8 has_med [u32 med] | u32 originator
//          | u16 path length | u32 asn...
//          | u16 community count | u32 community...
//
// Marker events (type 2 = feed gap, 3 = resync) use the same record with
// zeroed prefix/attribute fields.  All integers little-endian.  Loading
// validates the magic, the declared count, every enum value and length
// field, and fails cleanly on truncation; the diagnostic overload
// additionally reports where and why a load failed.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>

#include "collector/event_stream.h"

namespace ranomaly::collector {

// Writes the stream; returns false on stream I/O failure.
bool SaveBinary(const EventStream& stream, std::ostream& os);

// Reads a stream; nullopt on any framing/validation error.
std::optional<EventStream> LoadBinary(std::istream& is);

// Why a binary load failed (kNone on success).  Shared by the RNE1 event
// format and the RNC1 checkpoint format (checkpoint.h).
enum class LoadError : std::uint8_t {
  kNone,
  kBadMagic,     // missing/foreign magic bytes
  kTruncated,    // stream ended inside the declared record set
  kBadEnum,      // an enum or length field held an impossible value
  kOutOfOrder,   // event timestamps regressed
  kBadVersion,   // recognized magic, unsupported format version
  kBadChecksum,  // payload CRC mismatch (torn write / bit rot)
};

const char* ToString(LoadError error);

// Where and why a load failed: the absolute byte offset the reader had
// consumed when the error was detected, and the index of the event record
// being read (event_count if the failure was in the header).
struct LoadDiagnostics {
  LoadError error = LoadError::kNone;
  std::uint64_t byte_offset = 0;
  std::uint64_t event_index = 0;

  // "bad enum or length field at byte 131 (event 2)"
  std::string ToString() const;
};

// Error-reporting overload: identical behaviour, but fills `diag`.
std::optional<EventStream> LoadBinary(std::istream& is, LoadDiagnostics& diag);

// Little-endian primitives and the shared attribute-block layout, reused
// by the checkpoint format (checkpoint.h).
namespace io {

// Append-only sink over a std::string with the same write() shape as
// std::ostream.  Hot encode paths (the live-state checkpoint sections,
// cut every few ticks on the replay thread) use it instead of
// std::ostringstream: a string append is a few inlined instructions,
// where every ostream write pays a sentry + virtual dispatch.
class StringSink {
 public:
  explicit StringSink(std::string& out) : out_(out) {}
  void write(const char* data, std::streamsize n) {
    out_.append(data, static_cast<std::size_t>(n));
  }

 private:
  std::string& out_;
};

// Serializes `value` little-endian regardless of host order.  Sink is
// std::ostream or StringSink (anything with ostream-shaped write()).
template <typename T, typename Sink>
void Put(Sink& os, T value) {
  unsigned char buf[sizeof(T)];
  auto u = static_cast<std::uint64_t>(value);
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    buf[i] = static_cast<unsigned char>(u & 0xff);
    u >>= 8;
  }
  os.write(reinterpret_cast<const char*>(buf), sizeof(T));
}

// Counting reader over an istream: tracks how many bytes were consumed so
// failures can be located.
class Reader {
 public:
  explicit Reader(std::istream& is) : is_(is) {}

  template <typename T>
  bool Get(T& value) {
    unsigned char buf[sizeof(T)];
    if (!GetRaw(reinterpret_cast<char*>(buf), sizeof(T))) return false;
    std::uint64_t u = 0;
    for (std::size_t i = sizeof(T); i-- > 0;) {
      u = (u << 8) | buf[i];
    }
    value = static_cast<T>(u);
    return true;
  }

  bool GetRaw(char* buf, std::size_t n);

  std::uint64_t offset() const { return offset_; }

 private:
  std::istream& is_;
  std::uint64_t offset_ = 0;
};

// The per-route attribute block shared by the RNE1 event record and the
// RNC1 checkpoint route record (everything after the prefix fields above).
template <typename Sink>
void PutAttrs(Sink& os, const bgp::PathAttributes& attrs) {
  Put<std::uint32_t>(os, attrs.nexthop.value());
  Put<std::uint8_t>(os, static_cast<std::uint8_t>(attrs.origin));
  Put<std::uint32_t>(os, attrs.local_pref);
  Put<std::uint8_t>(os, attrs.med ? 1 : 0);
  if (attrs.med) Put<std::uint32_t>(os, *attrs.med);
  Put<std::uint32_t>(os, attrs.originator_id);
  Put<std::uint16_t>(os, static_cast<std::uint16_t>(attrs.as_path.Length()));
  for (const bgp::AsNumber a : attrs.as_path.asns()) {
    Put<std::uint32_t>(os, a);
  }
  Put<std::uint16_t>(os, static_cast<std::uint16_t>(attrs.communities.size()));
  for (const bgp::Community c : attrs.communities) {
    Put<std::uint32_t>(os, c.raw());
  }
}
// Returns kNone, kTruncated or kBadEnum.
LoadError GetAttrs(Reader& r, bgp::PathAttributes& attrs);

// One full RNE1 event record (time | peer | type | prefix | attrs) —
// shared by the RNE1 stream body and the RNC1 live-state sections that
// persist in-flight window/queue events (core/live_checkpoint.cc).
// `ingest_tick` is NOT part of the record; callers that need it persist
// it alongside.  GetEvent validates the type and prefix-length fields.
template <typename Sink>
void PutEvent(Sink& os, const bgp::Event& event) {
  Put<std::int64_t>(os, event.time);
  Put<std::uint32_t>(os, event.peer.value());
  Put<std::uint8_t>(os, static_cast<std::uint8_t>(event.type));
  Put<std::uint32_t>(os, event.prefix.addr().value());
  Put<std::uint8_t>(os, event.prefix.length());
  PutAttrs(os, event.attrs);
}
LoadError GetEvent(Reader& r, bgp::Event& event);

}  // namespace io

}  // namespace ranomaly::collector
