// The BGP event stream: an append-only, time-ordered sequence of
// REX-augmented events, with the windowing, rate and persistence helpers
// the analysis algorithms need.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/attributes.h"
#include "util/stats.h"
#include "util/time.h"

namespace ranomaly::collector {

class EventStream {
 public:
  void Append(bgp::Event event);

  const std::vector<bgp::Event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  const bgp::Event& operator[](std::size_t i) const { return events_[i]; }
  const bgp::Event& front() const { return events_.front(); }
  const bgp::Event& back() const { return events_.back(); }

  // Difference between first and last timestamps (the "Timerange" column
  // of the paper's Table I); 0 for fewer than 2 events.
  util::SimDuration TimeRange() const;

  // Events with time in [begin, end) as a non-owning view.
  std::span<const bgp::Event> Window(util::SimTime begin,
                                     util::SimTime end) const;

  // Per-bucket event counts over the whole stream (paper Fig 8).
  util::RateSeries Rate(util::SimDuration bucket_width) const;

  // Text persistence in the Fig 4 line format, one event per line with a
  // leading microsecond timestamp.
  void SaveText(std::ostream& os) const;
  static std::optional<EventStream> LoadText(std::istream& is);

  void clear() { events_.clear(); }

 private:
  std::vector<bgp::Event> events_;  // time-ordered (enforced on Append)
};

// A detected surge of events: a maximal run of buckets whose counts
// exceed `factor` times the stream's mean rate.  Spikes are what the
// operator (or the real-time pipeline) hands to Stemming.
struct Spike {
  util::SimTime begin = 0;
  util::SimTime end = 0;  // exclusive
  std::uint64_t event_count = 0;
};

std::vector<Spike> DetectSpikes(const EventStream& stream,
                                util::SimDuration bucket_width,
                                double factor);

// A window during which the feed from `peer` was degraded: opened by a
// kFeedGap marker, closed by the peer's next kResync marker (or the end
// of the stream, in which case `closed` is false).  Analysis results
// overlapping such a window describe the collector's outage, not the
// network, and are flagged accordingly.
struct FeedGapWindow {
  bgp::Ipv4Addr peer;
  util::SimTime begin = 0;
  util::SimTime end = 0;  // inclusive of the closing kResync marker time
  bool closed = false;
};

std::vector<FeedGapWindow> FeedGapWindows(const EventStream& stream);

}  // namespace ranomaly::collector
