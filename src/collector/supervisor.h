// Session-aware feed supervision: the fault-tolerance layer between the
// raw wire and the Collector.
//
// The paper's premise is *passive, always-on* collection; a collector
// that dies on the first bad octet, or silently keeps a stale table
// across a session reset, poisons everything downstream (TAMP pictures
// of routes that no longer exist, Stemming windows that "explain" the
// collector's own outage).  The FeedSupervisor owns one bgp::SessionFsm
// per monitored peer and guarantees a degraded-but-honest stream:
//
//   * Wire frames go through bgp::DecodeMessageTolerant.  Undecodable
//     frames are quarantined into a capped ring buffer (never fatal);
//     recoverably malformed attribute sets are downgraded to
//     treat-as-withdraw per RFC 7606.
//   * Hold-timer expiry and silent feed gaps drop the session honestly:
//     the peer's routes stay warm but are marked stale, and an explicit
//     kFeedGap marker enters the event stream.
//   * Re-establishment uses bounded exponential backoff with seeded
//     jitter (util::Rng), then resynchronizes: the feed driver replays
//     the peer's table, routes not refreshed are swept as withdrawn, and
//     a kResync marker closes the gap window.
#pragma once

#include <cstdint>
#include <deque>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bgp/codec.h"
#include "bgp/session.h"
#include "collector/collector.h"
#include "util/rng.h"
#include "util/time.h"

namespace ranomaly::collector {

struct SupervisorOptions {
  // BGP hold time for every supervised session.
  util::SimDuration hold_time = 90 * util::kSecond;
  // A peer silent for this long while Established is treated as a feed
  // gap even before the hold timer fires (a wedged TCP session can stay
  // "up" while delivering nothing).  0 disables the check.
  util::SimDuration silent_gap = 0;
  // Reconnect backoff: initial delay, doubling per consecutive failure,
  // capped, with +/- `backoff_jitter` fractional seeded jitter so a fleet
  // of collectors does not reconnect in lockstep.
  util::SimDuration backoff_initial = util::kSecond;
  util::SimDuration backoff_max = 64 * util::kSecond;
  double backoff_jitter = 0.25;
  // Ring-buffer capacity for quarantined (undecodable) frames.
  std::size_t quarantine_capacity = 64;
};

// One undecodable frame, kept for post-mortem debugging.
struct QuarantinedFrame {
  util::SimTime time = 0;
  bgp::Ipv4Addr peer;
  std::vector<std::uint8_t> frame;
};

class FeedSupervisor {
 public:
  FeedSupervisor(Collector& collector, SupervisorOptions options = {},
                 std::uint64_t seed = 1);

  // Registers a peer and brings its session up at `now` (the initial
  // table transfer is the normal feed start, not a resync).
  void AddPeer(bgp::Ipv4Addr peer, util::SimTime now = 0);

  // One framed BGP message from `peer`.  Never throws on malformed
  // input; the worst case is a quarantined frame.
  void OnFrame(util::SimTime now, bgp::Ipv4Addr peer,
               const std::vector<std::uint8_t>& frame);

  // Clock tick: detects hold-timer expiry and silent gaps, and
  // re-establishes dropped sessions whose backoff has elapsed.  Call
  // this at least once per delivered frame (and after the feed ends).
  void OnTick(util::SimTime now);

  // Transport-level signals (TCP reset / interface down and up).
  void OnTransportDown(util::SimTime now, bgp::Ipv4Addr peer);
  void OnTransportUp(util::SimTime now, bgp::Ipv4Addr peer);

  // Resync protocol.  After a session re-establishes, the supervisor
  // requests a full-table replay from the feed driver: TakeResyncRequest
  // returns true exactly once per re-establishment.  The driver replays
  // the peer's table as ordinary announcement frames and then calls
  // OnResyncComplete; routes that were not refreshed are swept
  // (withdrawn) as having disappeared during the outage, and the
  // kResync marker closes the gap window.
  bool TakeResyncRequest(bgp::Ipv4Addr peer);
  void OnResyncComplete(util::SimTime now, bgp::Ipv4Addr peer);

  bool IsEstablished(bgp::Ipv4Addr peer) const;
  // The session FSM for `peer` (nullptr if unknown); for diagnostics.
  const bgp::SessionFsm* Session(bgp::Ipv4Addr peer) const;
  // When a dropped peer will next attempt to re-establish.
  util::SimTime RetryAt(bgp::Ipv4Addr peer) const;

  const std::deque<QuarantinedFrame>& quarantine() const {
    return quarantine_;
  }

  // Collector health extended with quarantine depth and per-peer decode
  // counters (the full CollectorHealth picture).
  CollectorHealth Health() const;

  const SupervisorOptions& options() const { return options_; }

  const Collector& collector() const { return collector_; }

 private:
  struct PeerState {
    bgp::SessionFsm fsm;
    bool transport_up = true;
    util::SimTime retry_at = 0;
    std::uint32_t backoff_failures = 0;  // consecutive, resets on resync
    bool resync_requested = false;
    bool resyncing = false;
    // Prefixes held before the outage and not yet refreshed by replay.
    std::unordered_set<bgp::Prefix, bgp::PrefixHash> unrefreshed;
    std::uint64_t decode_errors = 0;
    std::uint64_t treat_as_withdraw = 0;
    util::SimTime last_frame = 0;
  };

  PeerState& StateOf(bgp::Ipv4Addr peer);
  // Runs the (instantaneous, simulated) handshake to Established.
  void Establish(util::SimTime now, bgp::Ipv4Addr peer, PeerState& state,
                 bool request_resync);
  // Session lost: emit the kFeedGap marker, keep routes warm but stale,
  // and schedule the next reconnect attempt with backoff + jitter.
  void DropFeed(util::SimTime now, bgp::Ipv4Addr peer, PeerState& state);
  void ApplyUpdate(util::SimTime now, bgp::Ipv4Addr peer, PeerState& state,
                   const bgp::UpdateMessage& update, bool treat_as_withdraw);
  void Quarantine(util::SimTime now, bgp::Ipv4Addr peer, PeerState& state,
                  const std::vector<std::uint8_t>& frame);

  Collector& collector_;
  SupervisorOptions options_;
  util::Rng rng_;
  std::unordered_map<bgp::Ipv4Addr, PeerState, bgp::Ipv4Hash> peers_;
  std::deque<QuarantinedFrame> quarantine_;
  std::uint64_t quarantined_total_ = 0;
};

}  // namespace ranomaly::collector
