#include "collector/supervisor.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/log.h"
#include "util/strings.h"

namespace ranomaly::collector {

FeedSupervisor::FeedSupervisor(Collector& collector, SupervisorOptions options,
                               std::uint64_t seed)
    : collector_(collector), options_(options), rng_(seed) {}

FeedSupervisor::PeerState& FeedSupervisor::StateOf(bgp::Ipv4Addr peer) {
  const auto it = peers_.find(peer);
  if (it != peers_.end()) return it->second;
  AddPeer(peer);
  return peers_.at(peer);
}

void FeedSupervisor::AddPeer(bgp::Ipv4Addr peer, util::SimTime now) {
  const auto [it, inserted] =
      peers_.try_emplace(peer, PeerState{bgp::SessionFsm(options_.hold_time)});
  if (!inserted) return;
  // Bring the session up: the initial table transfer follows as the
  // normal feed, so no resync is requested.
  Establish(now, peer, it->second, /*request_resync=*/false);
}

void FeedSupervisor::Establish(util::SimTime now, bgp::Ipv4Addr peer,
                               PeerState& state, bool request_resync) {
  // The simulated handshake is instantaneous: the interesting dynamics
  // (backoff, staleness, resync) live around it, not inside it.
  state.fsm.OnInput(bgp::SessionInput::kManualStart, now);
  state.fsm.OnInput(bgp::SessionInput::kTcpConnected, now);
  state.fsm.OnInput(bgp::SessionInput::kOpenReceived, now);
  const bgp::SessionActions actions =
      state.fsm.OnInput(bgp::SessionInput::kKeepaliveReceived, now);
  state.last_frame = now;
  if (!actions.session_established) return;
  RANOMALY_METRIC_COUNT("collector_session_transitions_total", 1);
  if (request_resync) {
    RANOMALY_METRIC_COUNT("collector_reconnects_total", 1);
    state.resync_requested = true;
    state.resyncing = true;
    state.unrefreshed.clear();
    for (const auto& [prefix, attrs] : collector_.PeerRoutes(peer)) {
      state.unrefreshed.insert(prefix);
    }
  }
}

void FeedSupervisor::DropFeed(util::SimTime now, bgp::Ipv4Addr peer,
                              PeerState& state) {
  RANOMALY_METRIC_COUNT("collector_session_transitions_total", 1);
  collector_.OnMarker(now, peer, bgp::EventType::kFeedGap);
  // Abandon any half-finished resync; the next one restarts from scratch.
  state.resync_requested = false;
  state.resyncing = false;
  state.unrefreshed.clear();
  // Bounded exponential backoff with seeded jitter.
  const std::uint32_t shift = std::min<std::uint32_t>(state.backoff_failures,
                                                      20);
  util::SimDuration delay = options_.backoff_initial << shift;
  delay = std::min(delay, options_.backoff_max);
  const double jitter =
      1.0 + options_.backoff_jitter * (2.0 * rng_.NextDouble() - 1.0);
  delay = std::max<util::SimDuration>(
      1, static_cast<util::SimDuration>(static_cast<double>(delay) * jitter));
  state.retry_at = now + delay;
  ++state.backoff_failures;
  RANOMALY_LOG(util::LogLevel::kInfo,
               util::StrPrintf("supervisor: feed gap on %s, retry in %s",
                               peer.ToString().c_str(),
                               util::FormatDuration(delay).c_str()));
}

void FeedSupervisor::Quarantine(util::SimTime now, bgp::Ipv4Addr peer,
                                PeerState& state,
                                const std::vector<std::uint8_t>& frame) {
  ++state.decode_errors;
  ++quarantined_total_;
  RANOMALY_METRIC_COUNT("collector_frames_quarantined_total", 1);
  if (quarantine_.size() >= options_.quarantine_capacity) {
    quarantine_.pop_front();  // capped: oldest evidence ages out
  }
  quarantine_.push_back(QuarantinedFrame{now, peer, frame});
}

void FeedSupervisor::ApplyUpdate(util::SimTime now, bgp::Ipv4Addr peer,
                                 PeerState& state,
                                 const bgp::UpdateMessage& update,
                                 bool treat_as_withdraw) {
  for (const bgp::Prefix& prefix : update.withdrawn) {
    if (state.resyncing) state.unrefreshed.erase(prefix);
    collector_.OnWithdraw(now, peer, prefix);
  }
  if (treat_as_withdraw) {
    // RFC 7606: announced routes with a malformed attribute set must be
    // withdrawn, not believed and not fatal.
    for (const bgp::Prefix& prefix : update.nlri) {
      if (state.resyncing) state.unrefreshed.erase(prefix);
      collector_.OnWithdraw(now, peer, prefix);
    }
    return;
  }
  if (!update.attrs) return;  // withdraw-only update
  for (const bgp::Prefix& prefix : update.nlri) {
    if (state.resyncing) state.unrefreshed.erase(prefix);
    collector_.OnAnnounce(now, peer, prefix, *update.attrs);
  }
}

void FeedSupervisor::OnFrame(util::SimTime now, bgp::Ipv4Addr peer,
                             const std::vector<std::uint8_t>& frame) {
  RANOMALY_METRIC_COUNT("collector_frames_total", 1);
  PeerState& state = StateOf(peer);
  if (!state.transport_up ||
      state.fsm.state() != bgp::SessionState::kEstablished) {
    // Frames on a down session carry no usable context (we may be missing
    // arbitrary predecessors); the resync after re-establishment heals.
    return;
  }

  const bgp::TolerantDecodeResult decoded = bgp::DecodeMessageTolerant(frame);
  switch (decoded.status) {
    case bgp::DecodeStatus::kFramingError:
      // One bad octet stream must never kill ingestion: quarantine and
      // carry on.  Deliberately does NOT refresh the hold timer — garbage
      // is not proof of a live peer.
      Quarantine(now, peer, state, frame);
      return;
    case bgp::DecodeStatus::kAttributeError:
      ++state.treat_as_withdraw;
      RANOMALY_METRIC_COUNT("collector_treat_as_withdraw_total", 1);
      state.last_frame = now;
      state.fsm.OnInput(bgp::SessionInput::kUpdateReceived, now);
      ApplyUpdate(now, peer, state, decoded.result.update,
                  /*treat_as_withdraw=*/true);
      return;
    case bgp::DecodeStatus::kOk:
      break;
  }

  state.last_frame = now;
  switch (decoded.result.type) {
    case bgp::MessageType::kKeepalive:
      state.fsm.OnInput(bgp::SessionInput::kKeepaliveReceived, now);
      break;
    case bgp::MessageType::kOpen:
      state.fsm.OnInput(bgp::SessionInput::kOpenReceived, now);
      break;
    case bgp::MessageType::kNotification: {
      const bgp::SessionActions actions =
          state.fsm.OnInput(bgp::SessionInput::kNotificationReceived, now);
      if (actions.session_dropped) DropFeed(now, peer, state);
      break;
    }
    case bgp::MessageType::kUpdate:
      state.fsm.OnInput(bgp::SessionInput::kUpdateReceived, now);
      ApplyUpdate(now, peer, state, decoded.result.update,
                  /*treat_as_withdraw=*/false);
      break;
  }
}

void FeedSupervisor::OnTick(util::SimTime now) {
  for (auto& [peer, state] : peers_) {
    // Hold-timer expiry (RFC 4271) and the stricter silent-gap check.
    if (state.fsm.HoldTimerExpired(now)) {
      const bgp::SessionActions actions =
          state.fsm.OnInput(bgp::SessionInput::kHoldTimerExpired, now);
      if (actions.session_dropped) DropFeed(now, peer, state);
    } else if (options_.silent_gap > 0 &&
               state.fsm.state() == bgp::SessionState::kEstablished &&
               now - state.last_frame > options_.silent_gap) {
      const bgp::SessionActions actions =
          state.fsm.OnInput(bgp::SessionInput::kManualStop, now);
      if (actions.session_dropped) DropFeed(now, peer, state);
    }
    // Reconnect once the transport is back and the backoff has elapsed.
    if (state.fsm.state() == bgp::SessionState::kIdle && state.transport_up &&
        collector_.IsPeerStale(peer) && now >= state.retry_at) {
      Establish(now, peer, state, /*request_resync=*/true);
    }
  }
}

void FeedSupervisor::OnTransportDown(util::SimTime now, bgp::Ipv4Addr peer) {
  PeerState& state = StateOf(peer);
  state.transport_up = false;
  const bgp::SessionActions actions =
      state.fsm.OnInput(bgp::SessionInput::kTcpFailed, now);
  if (actions.session_dropped) DropFeed(now, peer, state);
}

void FeedSupervisor::OnTransportUp(util::SimTime now, bgp::Ipv4Addr peer) {
  PeerState& state = StateOf(peer);
  state.transport_up = true;
  // Reconnection happens on the next tick at `retry_at`; coming back up
  // does not skip the backoff (flapping transport must not hammer).
  state.retry_at = std::max(state.retry_at, now);
}

bool FeedSupervisor::TakeResyncRequest(bgp::Ipv4Addr peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end() || !it->second.resync_requested) return false;
  it->second.resync_requested = false;
  return true;
}

void FeedSupervisor::OnResyncComplete(util::SimTime now, bgp::Ipv4Addr peer) {
  const auto it = peers_.find(peer);
  if (it == peers_.end() || !it->second.resyncing) return;
  PeerState& state = it->second;
  // Routes the replay did not refresh disappeared during the outage:
  // withdraw them honestly (inside the gap window, before the kResync
  // marker closes it).
  obs::TraceSpan span("collector.resync_sweep");
  span.Annotate("unrefreshed",
                static_cast<std::uint64_t>(state.unrefreshed.size()));
  RANOMALY_METRIC_COUNT("collector_resync_swept_routes_total",
                        state.unrefreshed.size());
  std::vector<bgp::Prefix> swept(state.unrefreshed.begin(),
                                 state.unrefreshed.end());
  std::sort(swept.begin(), swept.end(), [](const bgp::Prefix& a,
                                           const bgp::Prefix& b) {
    return a.addr().value() != b.addr().value()
               ? a.addr().value() < b.addr().value()
               : a.length() < b.length();
  });
  for (const bgp::Prefix& prefix : swept) {
    collector_.OnWithdraw(now, peer, prefix);
  }
  state.unrefreshed.clear();
  state.resyncing = false;
  state.backoff_failures = 0;  // healthy again
  collector_.OnMarker(now, peer, bgp::EventType::kResync);
}

bool FeedSupervisor::IsEstablished(bgp::Ipv4Addr peer) const {
  const auto it = peers_.find(peer);
  return it != peers_.end() &&
         it->second.fsm.state() == bgp::SessionState::kEstablished;
}

const bgp::SessionFsm* FeedSupervisor::Session(bgp::Ipv4Addr peer) const {
  const auto it = peers_.find(peer);
  return it == peers_.end() ? nullptr : &it->second.fsm;
}

util::SimTime FeedSupervisor::RetryAt(bgp::Ipv4Addr peer) const {
  const auto it = peers_.find(peer);
  return it == peers_.end() ? 0 : it->second.retry_at;
}

CollectorHealth FeedSupervisor::Health() const {
  CollectorHealth health = collector_.Health();
  health.quarantine_depth = quarantine_.size();
  health.quarantined_total = quarantined_total_;
  for (const auto& [peer, state] : peers_) {
    PeerHealth& ph = health.peers[peer];  // creates if collector never saw it
    ph.decode_errors = state.decode_errors;
    ph.treat_as_withdraw = state.treat_as_withdraw;
    health.decode_errors += state.decode_errors;
    health.treat_as_withdraw += state.treat_as_withdraw;
  }
  return health;
}

}  // namespace ranomaly::collector
