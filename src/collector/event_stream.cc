#include "collector/event_stream.h"

#include <algorithm>
#include <istream>
#include <ostream>
#include <stdexcept>
#include <unordered_map>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/strings.h"

namespace ranomaly::collector {

void EventStream::Append(bgp::Event event) {
  if (!events_.empty() && event.time < events_.back().time) {
    throw std::invalid_argument("EventStream::Append: out-of-order event");
  }
  events_.push_back(std::move(event));
}

util::SimDuration EventStream::TimeRange() const {
  if (events_.size() < 2) return 0;
  return events_.back().time - events_.front().time;
}

std::span<const bgp::Event> EventStream::Window(util::SimTime begin,
                                                util::SimTime end) const {
  const auto lo = std::lower_bound(
      events_.begin(), events_.end(), begin,
      [](const bgp::Event& e, util::SimTime t) { return e.time < t; });
  const auto hi = std::lower_bound(
      lo, events_.end(), end,
      [](const bgp::Event& e, util::SimTime t) { return e.time < t; });
  return {&*events_.begin() + (lo - events_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

util::RateSeries EventStream::Rate(util::SimDuration bucket_width) const {
  const util::SimTime start = events_.empty() ? 0 : events_.front().time;
  util::RateSeries series(start, bucket_width);
  for (const bgp::Event& e : events_) series.Add(e.time);
  return series;
}

void EventStream::SaveText(std::ostream& os) const {
  obs::TraceSpan span("collector.save_text");
  span.Annotate("events", static_cast<std::uint64_t>(events_.size()));
  std::uint64_t bytes = 0;
  for (const bgp::Event& e : events_) {
    const std::string text = e.ToString();
    os << e.time << ' ' << text << '\n';
    bytes += text.size() + 2;  // separator + newline (time digits excluded)
  }
  RANOMALY_METRIC_COUNT("io_events_saved_total", events_.size());
  RANOMALY_METRIC_COUNT("io_bytes_written_total", bytes);
}

std::optional<EventStream> EventStream::LoadText(std::istream& is) {
  obs::TraceSpan span("collector.load_text");
  EventStream stream;
  std::string line;
  std::uint64_t bytes = 0;
  while (std::getline(is, line)) {
    bytes += line.size() + 1;
    const std::string_view trimmed = util::Trim(line);
    if (trimmed.empty() || trimmed[0] == '#') continue;
    const auto space = trimmed.find(' ');
    std::uint64_t time = 0;
    auto fail = [&]() -> std::optional<EventStream> {
      RANOMALY_METRIC_COUNT("io_load_errors_total", 1);
      return std::nullopt;
    };
    if (space == std::string_view::npos) return fail();
    if (!util::ParseU64(trimmed.substr(0, space), time)) return fail();
    auto event = bgp::Event::Parse(trimmed.substr(space + 1));
    if (!event) return fail();
    event->time = static_cast<util::SimTime>(time);
    stream.Append(std::move(*event));
  }
  span.Annotate("events", static_cast<std::uint64_t>(stream.size()));
  RANOMALY_METRIC_COUNT("io_events_loaded_total", stream.size());
  RANOMALY_METRIC_COUNT("io_bytes_read_total", bytes);
  return stream;
}

std::vector<FeedGapWindow> FeedGapWindows(const EventStream& stream) {
  std::vector<FeedGapWindow> windows;
  // Index of the currently open window per peer, if any.
  std::unordered_map<std::uint32_t, std::size_t> open;
  for (const bgp::Event& e : stream.events()) {
    if (e.type == bgp::EventType::kFeedGap) {
      const auto [it, inserted] = open.try_emplace(e.peer.value(), 0);
      if (!inserted) continue;  // already gapped; first marker wins
      it->second = windows.size();
      windows.push_back(FeedGapWindow{e.peer, e.time, e.time, false});
    } else if (e.type == bgp::EventType::kResync) {
      const auto it = open.find(e.peer.value());
      if (it == open.end()) continue;  // resync without a gap: ignore
      windows[it->second].end = e.time;
      windows[it->second].closed = true;
      open.erase(it);
    }
  }
  // Unclosed gaps extend to the end of the stream.
  for (const auto& [peer, idx] : open) {
    windows[idx].end = stream.empty() ? windows[idx].begin
                                      : stream.back().time;
  }
  return windows;
}

std::vector<Spike> DetectSpikes(const EventStream& stream,
                                util::SimDuration bucket_width,
                                double factor) {
  std::vector<Spike> spikes;
  if (stream.empty()) return spikes;
  const util::RateSeries rate = stream.Rate(bucket_width);
  const double threshold = rate.MeanRate() * factor;
  const auto& buckets = rate.buckets();

  std::optional<std::size_t> run_start;
  std::uint64_t run_count = 0;
  auto close_run = [&](std::size_t end_bucket) {
    if (!run_start) return;
    Spike s;
    s.begin = rate.start() +
              static_cast<util::SimTime>(*run_start) * bucket_width;
    s.end =
        rate.start() + static_cast<util::SimTime>(end_bucket) * bucket_width;
    s.event_count = run_count;
    spikes.push_back(s);
    run_start.reset();
    run_count = 0;
  };

  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (static_cast<double>(buckets[i]) > threshold) {
      if (!run_start) run_start = i;
      run_count += buckets[i];
    } else {
      close_run(i);
    }
  }
  close_run(buckets.size());
  return spikes;
}

}  // namespace ranomaly::collector
