// Deterministic fault-injection harness for the collection layer.
//
// Two pieces:
//
//   * FaultInjector — a seeded (util::Rng) channel model applied per
//     wire frame: truncation, bit flips, drops, duplication, pairwise
//     reordering, and clock skew.  Same seed + same input frames ==
//     byte-identical fault schedule, so robustness tests are exactly
//     reproducible.
//   * WireFeed — the adapter that turns net::Simulator best-path taps
//     into real RFC 4271 wire frames (bgp::EncodeUpdate), pushes them
//     through the injector into a FeedSupervisor, paces keepalives so
//     quiet periods do not spuriously expire the hold timer, applies
//     scheduled transport drops, and serves the supervisor's resync
//     requests by replaying its per-peer mirror of the monitored
//     router's advertisements.
//
// The mirror is updated *before* injection: it models the router's own
// Adj-RIB-Out, which faults on the wire cannot touch.  A resync replay
// therefore heals whatever the channel mangled — which is the property
// the acceptance test leans on (faulty run == clean run modulo marked
// FeedGap windows).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "collector/supervisor.h"
#include "net/simulator.h"
#include "util/rng.h"
#include "util/time.h"

namespace ranomaly::collector {

struct FaultOptions {
  // Per-frame probability of corruption.  Corruption picks (uniformly)
  // truncation or a burst of bit flips confined to the 19-byte message
  // header (marker/length/type) — both are detectably fatal, so the
  // supervisor quarantines the frame rather than believing garbage.
  double corrupt_probability = 0.0;
  // Per-frame probability of arbitrary payload bit flips.  Unlike header
  // corruption these may decode "successfully" with wrong content or
  // degrade to treat-as-withdraw; use for codec robustness, not for
  // tests that compare stream contents.
  double payload_bitflip_probability = 0.0;
  double drop_probability = 0.0;
  double duplicate_probability = 0.0;
  // Probability a frame is held back and delivered after its successor
  // (pairwise reorder).
  double reorder_probability = 0.0;
  // Uniform +/- skew added to each frame's delivery timestamp.
  util::SimDuration max_clock_skew = 0;
};

struct FaultStats {
  std::uint64_t frames = 0;      // frames offered to the channel
  std::uint64_t corrupted = 0;   // header corruption (truncate / flip)
  std::uint64_t payload_flipped = 0;
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;
  std::uint64_t skewed = 0;
};

// One frame as it leaves the faulty channel.
struct InjectedFrame {
  util::SimTime time = 0;
  bgp::Ipv4Addr peer;
  std::vector<std::uint8_t> frame;
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultOptions options, std::uint64_t seed = 1);

  // Passes one frame through the channel; returns the 0..3 frames that
  // come out the far end (drop, duplication and the release of a
  // previously held reordered frame change the count).
  std::vector<InjectedFrame> Process(util::SimTime now, bgp::Ipv4Addr peer,
                                     std::vector<std::uint8_t> frame);

  // Releases any held (reordered) frame at end of feed.
  std::vector<InjectedFrame> Flush();

  const FaultStats& stats() const { return stats_; }

 private:
  void Corrupt(std::vector<std::uint8_t>& frame);

  FaultOptions options_;
  util::Rng rng_;
  std::optional<InjectedFrame> held_;
  FaultStats stats_;
};

// Connects a Simulator to a FeedSupervisor over the faulty channel.
class WireFeed {
 public:
  WireFeed(net::Simulator& sim, FeedSupervisor& supervisor,
           FaultOptions faults = {}, std::uint64_t seed = 7);

  // Registers `router` with the supervisor and taps its best-path
  // changes.  Call before Simulator::Start().
  void Monitor(net::RouterIndex router);

  // Re-points the feed at a fresh supervisor (models a collector process
  // restart after a checkpoint restore).  Monitored peers are
  // re-registered with sessions established at `now`; the mirror is
  // router-side state and survives untouched.
  void Attach(FeedSupervisor& supervisor, util::SimTime now);

  // Kills the peer's transport at `at` and restores it `down_for` later
  // (the supervisor then backs off and resyncs).  Times must be in feed
  // order relative to the tapped events.
  void ScheduleSessionDrop(util::SimTime at, net::RouterIndex router,
                           util::SimDuration down_for);

  // Drains scheduled transport events and keepalive pacing up to `now`,
  // flushes any held frame, and serves outstanding resyncs.  Call after
  // the simulator run ends.
  void Finish(util::SimTime now);

  const FaultStats& fault_stats() const { return injector_.stats(); }
  std::uint64_t frames_sent() const { return frames_sent_; }
  std::uint64_t resyncs_served() const { return resyncs_served_; }

 private:
  struct ControlEvent {
    util::SimTime time = 0;
    bgp::Ipv4Addr peer;
    bool up = false;
  };

  void OnView(bgp::Ipv4Addr peer, const net::BestPathChangeView& view);
  // Advances the feed clock to `now`: delivers due keepalives and
  // transport events in time order, ticking the supervisor at each step.
  void Pump(util::SimTime now);
  void Deliver(util::SimTime now, bgp::Ipv4Addr peer,
               std::vector<std::uint8_t> frame);
  void ServeResyncs(util::SimTime now);

  net::Simulator& sim_;
  FeedSupervisor* supervisor_;
  FaultInjector injector_;
  util::SimDuration keepalive_interval_;
  std::vector<bgp::Ipv4Addr> monitored_;
  std::unordered_map<bgp::Ipv4Addr,
                     std::unordered_map<bgp::Prefix, bgp::PathAttributes,
                                        bgp::PrefixHash>,
                     bgp::Ipv4Hash>
      mirror_;
  std::unordered_map<bgp::Ipv4Addr, util::SimTime, bgp::Ipv4Hash>
      next_keepalive_;
  std::unordered_map<bgp::Ipv4Addr, bool, bgp::Ipv4Hash> transport_down_;
  std::vector<ControlEvent> control_;  // kept sorted by time
  std::size_t control_next_ = 0;
  std::uint64_t frames_sent_ = 0;
  std::uint64_t resyncs_served_ = 0;
};

}  // namespace ranomaly::collector
