#include "igp/lsa.h"

#include <algorithm>
#include <queue>

namespace ranomaly::igp {

LsaDisposition LinkStateDb::Install(const Lsa& lsa) {
  auto& area = areas_[lsa.area];
  auto [it, inserted] = area.try_emplace(lsa.origin, lsa);
  if (inserted) return LsaDisposition::kInstalledNew;
  if (lsa.sequence <= it->second.sequence) return LsaDisposition::kIgnoredStale;
  it->second = lsa;
  return LsaDisposition::kInstalledNewer;
}

const Lsa* LinkStateDb::Find(AreaId area, RouterId origin) const {
  const auto ait = areas_.find(area);
  if (ait == areas_.end()) return nullptr;
  const auto it = ait->second.find(origin);
  return it == ait->second.end() ? nullptr : &it->second;
}

std::unordered_map<RouterId, std::uint32_t> LinkStateDb::Spf(
    RouterId root) const {
  // Build the union adjacency view.  A link is usable only if both ends
  // advertise it (OSPF's two-way check).
  std::unordered_map<RouterId, std::vector<AdvertisedLink>> adj;
  for (const auto& [area_id, lsas] : areas_) {
    for (const auto& [origin, lsa] : lsas) {
      for (const AdvertisedLink& link : lsa.links) {
        const auto back = lsas.find(link.neighbor);
        const bool two_way =
            back != lsas.end() &&
            std::any_of(back->second.links.begin(), back->second.links.end(),
                        [&](const AdvertisedLink& l) {
                          return l.neighbor == origin;
                        });
        if (two_way) adj[origin].push_back(link);
      }
    }
  }

  std::unordered_map<RouterId, std::uint32_t> dist;
  using Item = std::pair<std::uint32_t, RouterId>;  // (cost, router)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[root] = 0;
  heap.emplace(0u, root);
  while (!heap.empty()) {
    const auto [cost, u] = heap.top();
    heap.pop();
    const auto du = dist.find(u);
    if (du != dist.end() && cost > du->second) continue;
    const auto au = adj.find(u);
    if (au == adj.end()) continue;
    for (const AdvertisedLink& link : au->second) {
      const std::uint32_t next = cost + link.cost;
      const auto dv = dist.find(link.neighbor);
      if (dv == dist.end() || next < dv->second) {
        dist[link.neighbor] = next;
        heap.emplace(next, link.neighbor);
      }
    }
  }
  return dist;
}

std::optional<std::uint32_t> LinkStateDb::Cost(RouterId root,
                                               RouterId target) const {
  const auto dist = Spf(root);
  const auto it = dist.find(target);
  if (it == dist.end()) return std::nullopt;
  return it->second;
}

std::size_t LinkStateDb::LsaCount() const {
  std::size_t n = 0;
  for (const auto& [area, lsas] : areas_) n += lsas.size();
  return n;
}

std::vector<AreaId> LinkStateDb::Areas() const {
  std::vector<AreaId> out;
  out.reserve(areas_.size());
  for (const auto& [area, lsas] : areas_) out.push_back(area);
  std::sort(out.begin(), out.end());
  return out;
}

void LsaLog::Record(util::SimTime time, const Lsa& lsa,
                    LsaDisposition disposition) {
  events_.push_back(LsaEvent{time, lsa, disposition});
}

std::vector<LsaEvent> LsaLog::EventsNear(util::SimTime center,
                                         util::SimDuration radius) const {
  std::vector<LsaEvent> out;
  const util::SimTime lo = center - radius;
  const util::SimTime hi = center + radius;
  // events_ is time-ordered; binary search the window.
  const auto begin = std::lower_bound(
      events_.begin(), events_.end(), lo,
      [](const LsaEvent& e, util::SimTime t) { return e.time < t; });
  for (auto it = begin; it != events_.end() && it->time <= hi; ++it) {
    out.push_back(*it);
  }
  return out;
}

}  // namespace ranomaly::igp
