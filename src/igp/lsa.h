// OSPF-flavoured link-state advertisements and the link-state database.
//
// The paper's collector (REX) also holds passive IGP adjacencies and
// temporally synchronizes LSAs with BGP events (Section III-D.3).  The
// BGP decision process consumes the IGP costs computed here ("hot
// potato"), and the drill-down API answers "did the IGP change around the
// time of this BGP incident?".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/time.h"

namespace ranomaly::igp {

using RouterId = std::uint32_t;
using AreaId = std::uint16_t;

inline constexpr AreaId kBackboneArea = 0;

// One directed adjacency advertised by a router.
struct AdvertisedLink {
  RouterId neighbor = 0;
  std::uint32_t cost = 1;

  friend bool operator==(const AdvertisedLink&, const AdvertisedLink&) = default;
};

// A router LSA: the advertising router's current adjacency list in one
// area.  Sequence numbers provide freshness, as in OSPF.
struct Lsa {
  RouterId origin = 0;
  AreaId area = kBackboneArea;
  std::uint32_t sequence = 0;
  std::vector<AdvertisedLink> links;

  friend bool operator==(const Lsa&, const Lsa&) = default;
};

enum class LsaDisposition : std::uint8_t {
  kInstalledNew,   // first LSA from this router in this area
  kInstalledNewer, // replaced an older sequence
  kIgnoredStale,   // sequence not newer than what we have
};

// Per-area LSA store + shortest-path-first computation.
class LinkStateDb {
 public:
  LsaDisposition Install(const Lsa& lsa);

  const Lsa* Find(AreaId area, RouterId origin) const;

  // Dijkstra from `root` over the union of all areas the root appears in
  // (multi-area routers stitch areas together, a simplified ABR model).
  // Returns cost to every reachable router.
  std::unordered_map<RouterId, std::uint32_t> Spf(RouterId root) const;

  // Cost from root to target, or nullopt if unreachable.
  std::optional<std::uint32_t> Cost(RouterId root, RouterId target) const;

  std::size_t LsaCount() const;
  std::vector<AreaId> Areas() const;

 private:
  // area -> origin -> LSA
  std::unordered_map<AreaId, std::unordered_map<RouterId, Lsa>> areas_;
};

// A timestamped record of LSA activity, kept alongside the BGP event
// stream so incidents can be drilled down into IGP causes.
struct LsaEvent {
  util::SimTime time = 0;
  Lsa lsa;
  LsaDisposition disposition = LsaDisposition::kInstalledNew;
};

class LsaLog {
 public:
  void Record(util::SimTime time, const Lsa& lsa, LsaDisposition disposition);

  const std::vector<LsaEvent>& events() const { return events_; }

  // All LSA events within [center - radius, center + radius]; this is the
  // Section III-D.3 drill-down primitive.
  std::vector<LsaEvent> EventsNear(util::SimTime center,
                                   util::SimDuration radius) const;

 private:
  std::vector<LsaEvent> events_;  // append-only, time-ordered
};

}  // namespace ranomaly::igp
