#include "stemming/stemming.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace ranomaly::stemming {
namespace {

// Tagged 64-bit encoding: kind in the top byte, payload below.  Prefixes
// pack (address << 8) | length into 40 bits.
constexpr std::uint64_t Tag(SymbolKind kind, std::uint64_t payload) {
  return (static_cast<std::uint64_t>(kind) << 56) | payload;
}

}  // namespace

SymbolId SymbolTable::InternPeer(bgp::Ipv4Addr addr) {
  return pool_.Intern(Tag(SymbolKind::kPeer, addr.value()));
}
SymbolId SymbolTable::InternNexthop(bgp::Ipv4Addr addr) {
  return pool_.Intern(Tag(SymbolKind::kNexthop, addr.value()));
}
SymbolId SymbolTable::InternAs(bgp::AsNumber asn) {
  return pool_.Intern(Tag(SymbolKind::kAs, asn));
}
SymbolId SymbolTable::InternPrefix(const bgp::Prefix& prefix) {
  const std::uint64_t payload =
      (static_cast<std::uint64_t>(prefix.addr().value()) << 8) |
      prefix.length();
  return pool_.Intern(Tag(SymbolKind::kPrefix, payload));
}

SymbolKind SymbolTable::KindOf(SymbolId id) const {
  return static_cast<SymbolKind>(pool_.Lookup(id) >> 56);
}

bgp::Ipv4Addr SymbolTable::AddrOf(SymbolId id) const {
  const SymbolKind kind = KindOf(id);
  if (kind != SymbolKind::kPeer && kind != SymbolKind::kNexthop) {
    throw std::logic_error("SymbolTable::AddrOf: not an address symbol");
  }
  return bgp::Ipv4Addr(
      static_cast<std::uint32_t>(pool_.Lookup(id) & 0xffffffffULL));
}

bgp::AsNumber SymbolTable::AsOf(SymbolId id) const {
  if (KindOf(id) != SymbolKind::kAs) {
    throw std::logic_error("SymbolTable::AsOf: not an AS symbol");
  }
  return static_cast<bgp::AsNumber>(pool_.Lookup(id) & 0xffffffffULL);
}

bgp::Prefix SymbolTable::PrefixOf(SymbolId id) const {
  if (KindOf(id) != SymbolKind::kPrefix) {
    throw std::logic_error("SymbolTable::PrefixOf: not a prefix symbol");
  }
  const std::uint64_t payload = pool_.Lookup(id) & 0xffffffffffULL;
  return bgp::Prefix(
      bgp::Ipv4Addr(static_cast<std::uint32_t>(payload >> 8)),
      static_cast<std::uint8_t>(payload & 0xff));
}

std::string SymbolTable::Name(SymbolId id) const {
  switch (KindOf(id)) {
    case SymbolKind::kPeer: return "peer " + AddrOf(id).ToString();
    case SymbolKind::kNexthop: return "nexthop " + AddrOf(id).ToString();
    case SymbolKind::kAs: return "AS" + std::to_string(AsOf(id));
    case SymbolKind::kPrefix: return PrefixOf(id).ToString();
  }
  return "?";
}

std::string StemmingResult::StemLabel(const Component& component) const {
  return symbols.Name(component.stem.first) + " - " +
         symbols.Name(component.stem.second);
}

std::string StemmingResult::SequenceLabel(const Component& component) const {
  std::string out;
  for (std::size_t i = 0; i < component.top_sequence.size(); ++i) {
    if (i != 0) out += " ";
    out += symbols.Name(component.top_sequence[i]);
  }
  return out;
}

namespace {

struct EncodedEvent {
  std::vector<SymbolId> seq;
  SymbolId prefix_symbol = 0;
  double weight = 1.0;
};

struct PairHash {
  std::size_t operator()(const std::pair<SymbolId, SymbolId>& p) const {
    return std::hash<std::uint64_t>{}(
        (static_cast<std::uint64_t>(p.first) << 32) | p.second);
  }
};

struct VecHash {
  std::size_t operator()(const std::vector<SymbolId>& v) const {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const SymbolId s : v) {
      h ^= s;
      h *= 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
  }
};

constexpr double kCountEpsilon = 1e-9;

bool CountsEqual(double a, double b) {
  return std::fabs(a - b) <= kCountEpsilon * std::max(1.0, std::max(a, b));
}

// Finds the top-ranked sub-sequence (count desc, length desc, then
// lexicographically smallest for determinism) over active events.
// Returns nullopt if no bigram reaches min thresholds.
std::optional<std::pair<std::vector<SymbolId>, double>> TopSubsequence(
    const std::vector<EncodedEvent>& events, const std::vector<bool>& active,
    double min_count) {
  // Pass 1: bigram counts.  The maximum over all length>=2 sub-sequences
  // is attained by a bigram (counts are antitone in extension).
  std::unordered_map<std::pair<SymbolId, SymbolId>, double, PairHash> bigrams;
  for (std::size_t i = 0; i < events.size(); ++i) {
    if (!active[i]) continue;
    const auto& seq = events[i].seq;
    for (std::size_t j = 0; j + 1 < seq.size(); ++j) {
      bigrams[{seq[j], seq[j + 1]}] += events[i].weight;
    }
  }
  if (bigrams.empty()) return std::nullopt;

  double best_count = 0.0;
  for (const auto& [pair, count] : bigrams) {
    best_count = std::max(best_count, count);
  }
  if (best_count < min_count) return std::nullopt;

  // Survivors at length 2.
  std::unordered_set<std::vector<SymbolId>, VecHash> survivors;
  for (const auto& [pair, count] : bigrams) {
    if (CountsEqual(count, best_count)) {
      survivors.insert({pair.first, pair.second});
    }
  }

  // Iterative lengthening: a (k+1)-gram can keep the max count only if
  // its k-prefix does; count extensions of current survivors until none
  // survive.
  std::unordered_set<std::vector<SymbolId>, VecHash> last_survivors =
      survivors;
  std::size_t k = 2;
  while (!survivors.empty()) {
    last_survivors = survivors;
    std::unordered_map<std::vector<SymbolId>, double, VecHash> extended;
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (!active[i]) continue;
      const auto& seq = events[i].seq;
      if (seq.size() < k + 1) continue;
      std::vector<SymbolId> window;
      for (std::size_t j = 0; j + k < seq.size(); ++j) {
        window.assign(seq.begin() + static_cast<std::ptrdiff_t>(j),
                      seq.begin() + static_cast<std::ptrdiff_t>(j + k));
        if (!survivors.contains(window)) continue;
        window.push_back(seq[j + k]);
        extended[window] += events[i].weight;
      }
    }
    survivors.clear();
    for (const auto& [vec, count] : extended) {
      if (CountsEqual(count, best_count)) survivors.insert(vec);
    }
    ++k;
  }

  // Deterministic pick among the longest survivors.
  std::vector<SymbolId> best = *std::min_element(
      last_survivors.begin(), last_survivors.end());
  return std::make_pair(std::move(best), best_count);
}

bool ContainsSubsequence(const std::vector<SymbolId>& seq,
                         const std::vector<SymbolId>& sub) {
  if (sub.size() > seq.size()) return false;
  for (std::size_t j = 0; j + sub.size() <= seq.size(); ++j) {
    if (std::equal(sub.begin(), sub.end(),
                   seq.begin() + static_cast<std::ptrdiff_t>(j))) {
      return true;
    }
  }
  return false;
}

}  // namespace

StemmingResult Stem(std::span<const bgp::Event> events,
                    const StemmingOptions& options) {
  StemmingResult result;
  result.total_events = events.size();

  // Encode events into symbol sequences c = x h a1 .. an p (consecutive
  // AS-path prepends collapsed, as they carry no location information).
  std::vector<EncodedEvent> encoded;
  encoded.reserve(events.size());
  for (const bgp::Event& e : events) {
    EncodedEvent ee;
    ee.seq.reserve(e.attrs.as_path.Length() + 3);
    ee.seq.push_back(result.symbols.InternPeer(e.peer));
    ee.seq.push_back(result.symbols.InternNexthop(e.attrs.nexthop));
    bgp::AsNumber last_as = 0;
    bool have_last = false;
    for (const bgp::AsNumber asn : e.attrs.as_path.asns()) {
      if (have_last && asn == last_as) continue;
      ee.seq.push_back(result.symbols.InternAs(asn));
      last_as = asn;
      have_last = true;
    }
    ee.prefix_symbol = result.symbols.InternPrefix(e.prefix);
    ee.seq.push_back(ee.prefix_symbol);
    ee.weight = options.weight_fn ? options.weight_fn(e.prefix) : 1.0;
    result.total_weight += ee.weight;
    encoded.push_back(std::move(ee));
  }

  std::vector<bool> active(encoded.size(), true);
  std::size_t active_count = encoded.size();

  while (result.components.size() < options.max_components &&
         active_count > 0) {
    const double min_count =
        std::max(options.min_count,
                 options.min_count_fraction * result.total_weight);
    auto top = TopSubsequence(encoded, active, min_count);
    if (!top) break;
    auto& [sequence, count] = *top;
    if (sequence.size() < options.min_subsequence_length) break;

    Component component;
    component.top_sequence = sequence;
    component.stem = {sequence[sequence.size() - 2], sequence.back()};
    component.count = count;

    // P: prefixes of active sequences containing s'.
    std::unordered_set<SymbolId> prefix_symbols;
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      if (!active[i]) continue;
      if (ContainsSubsequence(encoded[i].seq, sequence)) {
        prefix_symbols.insert(encoded[i].prefix_symbol);
      }
    }
    // E: every active event whose prefix is in P.
    for (std::size_t i = 0; i < encoded.size(); ++i) {
      if (!active[i]) continue;
      if (prefix_symbols.contains(encoded[i].prefix_symbol)) {
        component.event_indices.push_back(i);
        component.event_weight += encoded[i].weight;
        active[i] = false;
        --active_count;
      }
    }
    component.prefixes.reserve(prefix_symbols.size());
    for (const SymbolId s : prefix_symbols) {
      component.prefixes.push_back(result.symbols.PrefixOf(s));
    }
    std::sort(component.prefixes.begin(), component.prefixes.end());

    result.components.push_back(std::move(component));
  }

  result.residual_events = active_count;
  return result;
}

}  // namespace ranomaly::stemming
