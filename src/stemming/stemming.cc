#include "stemming/stemming.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace ranomaly::stemming {
namespace {

// Tagged 64-bit encoding: kind in the top byte, payload below.  Prefixes
// pack (address << 8) | length into 40 bits.
constexpr std::uint64_t Tag(SymbolKind kind, std::uint64_t payload) {
  return (static_cast<std::uint64_t>(kind) << 56) | payload;
}

}  // namespace

SymbolId SymbolTable::InternPeer(bgp::Ipv4Addr addr) {
  return pool_.Intern(Tag(SymbolKind::kPeer, addr.value()));
}
SymbolId SymbolTable::InternNexthop(bgp::Ipv4Addr addr) {
  return pool_.Intern(Tag(SymbolKind::kNexthop, addr.value()));
}
SymbolId SymbolTable::InternAs(bgp::AsNumber asn) {
  return pool_.Intern(Tag(SymbolKind::kAs, asn));
}
SymbolId SymbolTable::InternPrefix(const bgp::Prefix& prefix) {
  const std::uint64_t payload =
      (static_cast<std::uint64_t>(prefix.addr().value()) << 8) |
      prefix.length();
  return pool_.Intern(Tag(SymbolKind::kPrefix, payload));
}

SymbolKind SymbolTable::KindOf(SymbolId id) const {
  return static_cast<SymbolKind>(pool_.Lookup(id) >> 56);
}

bgp::Ipv4Addr SymbolTable::AddrOf(SymbolId id) const {
  const SymbolKind kind = KindOf(id);
  if (kind != SymbolKind::kPeer && kind != SymbolKind::kNexthop) {
    throw std::logic_error("SymbolTable::AddrOf: not an address symbol");
  }
  return bgp::Ipv4Addr(
      static_cast<std::uint32_t>(pool_.Lookup(id) & 0xffffffffULL));
}

bgp::AsNumber SymbolTable::AsOf(SymbolId id) const {
  if (KindOf(id) != SymbolKind::kAs) {
    throw std::logic_error("SymbolTable::AsOf: not an AS symbol");
  }
  return static_cast<bgp::AsNumber>(pool_.Lookup(id) & 0xffffffffULL);
}

bgp::Prefix SymbolTable::PrefixOf(SymbolId id) const {
  if (KindOf(id) != SymbolKind::kPrefix) {
    throw std::logic_error("SymbolTable::PrefixOf: not a prefix symbol");
  }
  const std::uint64_t payload = pool_.Lookup(id) & 0xffffffffffULL;
  return bgp::Prefix(
      bgp::Ipv4Addr(static_cast<std::uint32_t>(payload >> 8)),
      static_cast<std::uint8_t>(payload & 0xff));
}

std::string SymbolTable::Name(SymbolId id) const {
  switch (KindOf(id)) {
    case SymbolKind::kPeer: return "peer " + AddrOf(id).ToString();
    case SymbolKind::kNexthop: return "nexthop " + AddrOf(id).ToString();
    case SymbolKind::kAs: return "AS" + std::to_string(AsOf(id));
    case SymbolKind::kPrefix: return PrefixOf(id).ToString();
  }
  return "?";
}

bool IsValidRawSymbol(std::uint64_t raw) {
  const std::uint64_t payload = raw & ((1ull << 56) - 1);
  switch (static_cast<SymbolKind>(raw >> 56)) {
    case SymbolKind::kPeer:
    case SymbolKind::kNexthop:
    case SymbolKind::kAs:
      return payload <= 0xffffffffULL;
    case SymbolKind::kPrefix:
      // (address << 8) | length in 40 bits, mask length <= 32.
      return payload <= 0xffffffffffULL && (payload & 0xff) <= 32;
  }
  return false;
}

std::string StemmingResult::StemLabel(const Component& component) const {
  return symbols.Name(component.stem.first) + " - " +
         symbols.Name(component.stem.second);
}

std::string StemmingResult::SequenceLabel(const Component& component) const {
  std::string out;
  for (std::size_t i = 0; i < component.top_sequence.size(); ++i) {
    if (i != 0) out += " ";
    out += symbols.Name(component.top_sequence[i]);
  }
  return out;
}

namespace {

constexpr double kCountEpsilon = 1e-9;

bool CountsEqual(double a, double b) {
  return std::fabs(a - b) <= kCountEpsilon * std::max(1.0, std::max(a, b));
}

inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t PackPair(SymbolId a, SymbolId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

// ---------------------------------------------------------------------------
// Flat sequence arena over *distinct* sequences.  BGP spike traffic is
// massively repetitive — the same (peer, nexthop, path, prefix) sequence
// recurs ~10x in Table-1-scale windows — and the algorithm never needs to
// tell duplicates apart: removal is prefix-granular, so events with
// identical sequences always share fate.  Each distinct sequence becomes
// one weighted "class" view; counting, posting lists, and component
// extraction all run over classes, and original event ids are recovered
// in a single ordered pass at the end.

struct EventView {
  std::uint32_t begin = 0;
  std::uint32_t length = 0;
  SymbolId prefix_symbol = 0;
  double weight = 0.0;        // summed over all events of the class
  double unit_weight = 1.0;   // weight_fn value (same for the whole class)
};

struct Arena {
  std::vector<SymbolId> symbols;
  std::vector<std::uint64_t> raw;  // raw tagged value per position
  std::vector<EventView> views;    // one per distinct sequence class
  // Bigram entry id of the adjacent pair starting at each arena position
  // (meaningful for the first length-1 positions of every class).  Filled
  // while the bigram index is built, so counting and incremental
  // subtraction are plain array arithmetic — no hash lookups at all.
  std::vector<std::uint32_t> pair_entries;

  const SymbolId* Seq(std::size_t cls) const {
    return symbols.data() + views[cls].begin;
  }
  std::size_t Len(std::size_t cls) const { return views[cls].length; }
};

// Open-addressed interner mapping a *raw tagged* sequence to its class
// id; sequences are stored once, in the arena itself.  Keying on raw
// values means the per-event hot loop does no symbol interning at all —
// symbols of a sequence are interned only when the sequence is first
// seen, which is exactly when a per-event encoder would have interned
// any of them for the first time, so symbol ids come out identical.
class ClassIndex {
 public:
  // Returns the class id for `seq`, or kNew if it was not seen before, in
  // which case the caller must append the sequence to the arena and then
  // call Insert with the id it assigned.  Slots carry the stored span's
  // (begin, length) so a lookup touches only the slot array and the raw
  // arena — never the (bigger, colder) view structs.
  static constexpr std::uint32_t kNew = 0xffffffffu;
  std::uint32_t FindOrPrepare(const std::uint64_t* arena_raw,
                              const std::uint64_t* seq, std::uint32_t len) {
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) {
      Grow(arena_raw, slots_.empty() ? 1024 : slots_.size() * 2);
    }
    std::size_t i = HashSpan(seq, len) & mask_;
    while (slots_[i].cls_plus1 != 0) {
      const Slot& slot = slots_[i];
      if (slot.length == len &&
          std::equal(seq, seq + len, arena_raw + slot.begin)) {
        return slot.cls_plus1 - 1;
      }
      i = (i + 1) & mask_;
    }
    pending_slot_ = i;
    return kNew;
  }
  void Insert(std::uint32_t cls, std::uint32_t begin, std::uint32_t len) {
    slots_[pending_slot_] = Slot{cls + 1, begin, len};
    ++size_;
  }

 private:
  struct Slot {
    std::uint32_t cls_plus1 = 0;  // 0 = empty
    std::uint32_t begin = 0;
    std::uint32_t length = 0;
  };

  static std::uint64_t HashSpan(const std::uint64_t* seq, std::uint32_t len) {
    // Single-multiply accumulation (short dependency chain — this runs
    // once per *event*), with one full finalizer to spread entropy into
    // the low bits the probe mask keeps.
    std::uint64_t h = len;
    for (std::uint32_t i = 0; i < len; ++i) {
      h = (h ^ seq[i]) * 0x9e3779b97f4a7c15ULL;
    }
    return Mix64(h);
  }

  void Grow(const std::uint64_t* arena_raw, std::size_t cap) {
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(cap, Slot{});
    mask_ = cap - 1;
    for (const Slot& slot : old) {
      if (slot.cls_plus1 == 0) continue;
      std::size_t i = HashSpan(arena_raw + slot.begin, slot.length) & mask_;
      while (slots_[i].cls_plus1 != 0) i = (i + 1) & mask_;
      slots_[i] = slot;
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
  std::size_t pending_slot_ = 0;
};

// ---------------------------------------------------------------------------
// Open-addressed hash map from packed 64-bit keys (bigrams) to a value.
// Linear probing, power-of-two capacity.  The empty sentinel is the pair
// (0xffffffff, 0xffffffff), unreachable while symbol ids stay dense.

template <typename Value>
class U64Map {
 public:
  static constexpr std::uint64_t kEmpty = ~0ULL;

  void Reserve(std::size_t n) {
    std::size_t cap = 16;
    while (cap * 7 < n * 10) cap <<= 1;  // target load factor <= 0.7
    if (cap > keys_.size()) Rehash(cap);
  }

  Value& At(std::uint64_t key) {
    if (keys_.empty() || (size_ + 1) * 10 > keys_.size() * 7) {
      Rehash(keys_.empty() ? 16 : keys_.size() * 2);
    }
    std::size_t i = Mix64(key) & mask_;
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    values_[i] = Value{};
    ++size_;
    return values_[i];
  }

  Value* Find(std::uint64_t key) {
    if (keys_.empty()) return nullptr;
    std::size_t i = Mix64(key) & mask_;
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const Value* Find(std::uint64_t key) const {
    return const_cast<U64Map*>(this)->Find(key);
  }

  // Slot-order iteration: deterministic, because the layout is a pure
  // function of the (deterministic) insertion sequence.
  template <typename F>
  void ForEach(F&& f) const {
    for (std::size_t i = 0; i < keys_.size(); ++i) {
      if (keys_[i] != kEmpty) f(keys_[i], values_[i]);
    }
  }

  std::size_t size() const { return size_; }

 private:
  void Rehash(std::size_t cap) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    keys_.assign(cap, kEmpty);
    values_.assign(cap, Value{});
    mask_ = cap - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      std::size_t j = Mix64(old_keys[i]) & mask_;
      while (keys_[j] != kEmpty) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      values_[j] = old_values[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<Value> values_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// Open-addressed k-gram table: maps length-k symbol spans to a count.
// Distinct keys are appended to a flat backing store (k symbols each), so
// lookups compare against contiguous memory and iteration is allocation-
// free.  Doubles as the survivor set during iterative lengthening.

class NgramTable {
 public:
  void Reset(std::size_t k) {
    k_ = k;
    keys_.clear();
    counts_.clear();
    std::fill(slots_.begin(), slots_.end(), 0u);
  }

  double& Count(const SymbolId* gram) {
    if (slots_.empty() || (counts_.size() + 1) * 10 > slots_.size() * 7) {
      Grow(slots_.empty() ? 32 : slots_.size() * 2);
    }
    std::size_t i = Hash(gram) & mask_;
    while (slots_[i] != 0) {
      const std::uint32_t e = slots_[i] - 1;
      if (std::equal(gram, gram + k_, keys_.data() + e * k_)) {
        return counts_[e];
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = static_cast<std::uint32_t>(counts_.size()) + 1;
    keys_.insert(keys_.end(), gram, gram + k_);
    counts_.push_back(0.0);
    return counts_.back();
  }

  const double* Find(const SymbolId* gram) const {
    if (slots_.empty()) return nullptr;
    std::size_t i = Hash(gram) & mask_;
    while (slots_[i] != 0) {
      const std::uint32_t e = slots_[i] - 1;
      if (std::equal(gram, gram + k_, keys_.data() + e * k_)) {
        return &counts_[e];
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  // f(const SymbolId* gram, double count), in first-insertion order.
  template <typename F>
  void ForEach(F&& f) const {
    for (std::size_t e = 0; e < counts_.size(); ++e) {
      f(keys_.data() + e * k_, counts_[e]);
    }
  }

  std::size_t size() const { return counts_.size(); }
  std::size_t k() const { return k_; }
  bool empty() const { return counts_.empty(); }

 private:
  std::uint64_t Hash(const SymbolId* gram) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ k_;
    for (std::size_t i = 0; i < k_; ++i) h = Mix64(h ^ gram[i]);
    return h;
  }

  void Grow(std::size_t cap) {
    slots_.assign(cap, 0u);
    mask_ = cap - 1;
    for (std::uint32_t e = 0; e < counts_.size(); ++e) {
      std::size_t i = Hash(keys_.data() + e * k_) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = e + 1;
    }
  }

  std::size_t k_ = 2;
  std::vector<std::uint32_t> slots_;  // entry index + 1; 0 = empty
  std::vector<SymbolId> keys_;        // flat, k_ symbols per entry
  std::vector<double> counts_;
  std::size_t mask_ = 0;
};

// ---------------------------------------------------------------------------
// Posting lists: bigram -> ids of events containing it, and prefix symbol
// -> ids of events carrying that prefix.  Built once over the arena;
// `active` filtering happens at query time.  This is what lets component
// extraction touch candidates instead of scanning every active event.

struct Postings {
  static constexpr std::uint32_t kNoEntry = 0xffffffffu;

  U64Map<std::uint32_t> bigram_index;      // packed pair -> entry id (+1)
  std::vector<std::uint64_t> bigram_keys;  // packed pair per entry
  // CSR index: for entry e, events[offsets[e]..offsets[e+1]) are the ids
  // of events whose sequence contains that bigram, ascending; an event
  // containing the bigram at several positions appears once per position,
  // so duplicates are adjacent and dedup is a single comparison.  Built
  // in one counting pass plus one fill pass over the recorded entry ids —
  // no per-bigram vectors, no allocator churn.
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> events;
  // Prefix symbol -> classes CSR (class ids ascending), same layout as the
  // bigram index above.  Built after the encode loop in a counting pass +
  // a fill pass; per-class push_back into per-prefix vectors was visible
  // allocator churn on 330k-event windows.
  std::vector<std::uint32_t> prefix_offsets;
  std::vector<std::uint32_t> prefix_classes;

  std::uint32_t EntryOf(SymbolId a, SymbolId b) const {
    const std::uint32_t* entry = bigram_index.Find(PackPair(a, b));
    return entry ? *entry - 1 : kNoEntry;
  }

  // Calls f(event_id) for every event containing entry `e`, ascending.
  template <typename F>
  void ForEachClassWith(std::uint32_t e, F&& f) const {
    std::uint32_t last = kNoEntry;
    for (std::uint32_t i = offsets[e]; i < offsets[e + 1]; ++i) {
      const std::uint32_t id = events[i];
      if (id == last) continue;
      last = id;
      f(id);
    }
  }
};

bool ContainsSpan(const SymbolId* seq, std::size_t len, const SymbolId* sub,
                  std::size_t sub_len) {
  if (sub_len > len) return false;
  for (std::size_t j = 0; j + sub_len <= len; ++j) {
    if (std::equal(sub, sub + sub_len, seq + j)) return true;
  }
  return false;
}

// Reused allocations for the per-component search.
struct Scratch {
  NgramTable survivors;
  NgramTable extended;
  std::vector<char> candidate_mark;
  std::vector<std::uint32_t> candidates;
  std::vector<char> entry_mark;  // bigram entries surviving at length 2
};

// Finds the top-ranked sub-sequence (count desc, length desc, then
// lexicographically smallest for determinism) over active events, reading
// bigram counts from the persistent (incrementally maintained) table.
// Returns nullopt if no bigram reaches min_count.
std::optional<std::pair<std::vector<SymbolId>, double>> TopSubsequence(
    const Arena& arena, const std::vector<char>& active,
    const Postings& postings, const std::vector<double>& bigram_counts,
    double min_count, Scratch& scratch) {
  // The maximum over all length>=2 sub-sequences is attained by a bigram
  // (counts are antitone in extension); the persistent dense count array
  // already holds every active bigram count.
  double best_count = 0.0;
  for (const double count : bigram_counts) {
    best_count = std::max(best_count, count);
  }
  if (best_count < min_count || best_count <= kCountEpsilon) {
    return std::nullopt;
  }

  // Survivors at length 2.  `entry_mark` mirrors the survivor set by
  // entry id so the first lengthening level can test membership with an
  // array load instead of a hash probe per position.
  scratch.survivors.Reset(2);
  scratch.entry_mark.assign(bigram_counts.size(), 0);
  for (std::size_t e = 0; e < bigram_counts.size(); ++e) {
    if (CountsEqual(bigram_counts[e], best_count)) {
      const std::uint64_t key = postings.bigram_keys[e];
      const SymbolId pair[2] = {static_cast<SymbolId>(key >> 32),
                                static_cast<SymbolId>(key)};
      scratch.survivors.Count(pair) = bigram_counts[e];
      scratch.entry_mark[e] = 1;
    }
  }

  // Iterative lengthening: a (k+1)-gram can keep the max count only if
  // its k-prefix does.  Count extensions of current survivors — over the
  // posting-list candidates only, in ascending event order so weighted
  // sums accumulate exactly as a full serial scan would — until no
  // survivor remains.
  std::vector<std::vector<SymbolId>> last_survivors;
  std::size_t k = 2;
  while (!scratch.survivors.empty()) {
    last_survivors.clear();
    scratch.survivors.ForEach([&](const SymbolId* gram, double) {
      last_survivors.emplace_back(gram, gram + k);
    });

    // Candidate events: union of the survivors' leading-bigram postings.
    // Marks are cleared per-candidate below, so the cost of a level stays
    // proportional to its candidate set, not the window.
    if (scratch.candidate_mark.size() < arena.views.size()) {
      scratch.candidate_mark.assign(arena.views.size(), 0);
    }
    scratch.candidates.clear();
    scratch.survivors.ForEach([&](const SymbolId* gram, double) {
      const std::uint32_t e = postings.EntryOf(gram[0], gram[1]);
      if (e == Postings::kNoEntry) return;
      postings.ForEachClassWith(e, [&](std::uint32_t id) {
        if (active[id] && !scratch.candidate_mark[id]) {
          scratch.candidate_mark[id] = 1;
          scratch.candidates.push_back(id);
        }
      });
    });
    std::sort(scratch.candidates.begin(), scratch.candidates.end());
    for (const std::uint32_t id : scratch.candidates) {
      scratch.candidate_mark[id] = 0;
    }

    scratch.extended.Reset(k + 1);
    if (k == 2) {
      // First level runs over every candidate position; membership in the
      // survivor set is a lookup on the recorded entry ids, not a hash.
      for (const std::uint32_t id : scratch.candidates) {
        const EventView& view = arena.views[id];
        if (view.length < 3) continue;
        const SymbolId* seq = arena.Seq(id);
        const double weight = view.weight;
        for (std::uint32_t j = 0; j + 2 < view.length; ++j) {
          if (scratch.entry_mark[arena.pair_entries[view.begin + j]]) {
            scratch.extended.Count(seq + j) += weight;
          }
        }
      }
    } else {
      for (const std::uint32_t id : scratch.candidates) {
        const SymbolId* seq = arena.Seq(id);
        const std::size_t len = arena.Len(id);
        if (len < k + 1) continue;
        const double weight = arena.views[id].weight;
        for (std::size_t j = 0; j + k < len; ++j) {
          if (scratch.survivors.Find(seq + j) != nullptr) {
            scratch.extended.Count(seq + j) += weight;
          }
        }
      }
    }

    scratch.survivors.Reset(k + 1);
    scratch.extended.ForEach([&](const SymbolId* gram, double count) {
      if (CountsEqual(count, best_count)) {
        scratch.survivors.Count(gram) = count;
      }
    });
    ++k;
  }

  // Deterministic pick among the longest survivors.
  std::vector<SymbolId> best = *std::min_element(last_survivors.begin(),
                                                 last_survivors.end());
  return std::make_pair(std::move(best), best_count);
}

}  // namespace

StemmingResult Stem(std::span<const bgp::Event> events,
                    const StemmingOptions& options) {
  StemmingResult result;
  result.total_events = events.size();
  result.stats.events_encoded = events.size();

  // Encode events into symbol sequences c = x h a1 .. an p (consecutive
  // AS-path prepends collapsed, as they carry no location information),
  // deduplicated into weighted classes in the flat arena.  Symbols are
  // interned per event — in the same order a per-event encoder would —
  // so symbol ids are unchanged by the dedup.
  const util::StageTimer encode_timer;
  obs::TraceSpan encode_span("stemming.encode");
  encode_span.Annotate("events", static_cast<std::uint64_t>(events.size()));
  Arena arena;
  Postings postings;
  ClassIndex class_index;
  std::vector<std::uint32_t> event_class(events.size(), 0);
  std::vector<std::uint32_t> class_mult;    // events per class
  std::vector<std::uint32_t> entry_counts;  // pair positions per bigram
  std::vector<std::uint64_t> raw_buf;
  // With no weight_fn every event weighs exactly 1.0, so class weights
  // and the window total are integers — computable from multiplicities
  // after the loop instead of accumulated per event.  (Identical values:
  // a sum of m ones is exactly m in double precision.)
  const bool weighted = static_cast<bool>(options.weight_fn);
  for (std::size_t ei = 0; ei < events.size(); ++ei) {
    if (ei + 1 < events.size()) {
      // The AS path lives behind a pointer per event; pull the next one
      // into cache while this one is being encoded.
      __builtin_prefetch(events[ei + 1].attrs.as_path.asns().data());
    }
    const bgp::Event& e = events[ei];
    // Raw tagged sequence — pure arithmetic, no table lookups.
    raw_buf.clear();
    raw_buf.push_back(Tag(SymbolKind::kPeer, e.peer.value()));
    raw_buf.push_back(Tag(SymbolKind::kNexthop, e.attrs.nexthop.value()));
    bgp::AsNumber last_as = 0;
    bool have_last = false;
    for (const bgp::AsNumber asn : e.attrs.as_path.asns()) {
      if (have_last && asn == last_as) continue;
      raw_buf.push_back(Tag(SymbolKind::kAs, asn));
      last_as = asn;
      have_last = true;
    }
    raw_buf.push_back(
        Tag(SymbolKind::kPrefix,
            (static_cast<std::uint64_t>(e.prefix.addr().value()) << 8) |
                e.prefix.length()));

    const std::uint32_t len = static_cast<std::uint32_t>(raw_buf.size());
    std::uint32_t cls =
        class_index.FindOrPrepare(arena.raw.data(), raw_buf.data(), len);
    if (cls == ClassIndex::kNew) {
      cls = static_cast<std::uint32_t>(arena.views.size());
      EventView view;
      view.begin = static_cast<std::uint32_t>(arena.symbols.size());
      view.length = len;
      // Symbols are interned here, and only here: a sequence containing a
      // never-seen symbol is necessarily a never-seen sequence, so first
      // occurrences intern at the same point in event order as a
      // per-event encoder — symbol ids are identical.
      for (const std::uint64_t raw : raw_buf) {
        arena.symbols.push_back(result.symbols.InternRaw(raw));
      }
      arena.raw.insert(arena.raw.end(), raw_buf.begin(), raw_buf.end());
      view.prefix_symbol = arena.symbols.back();
      // Per-pair work happens once per *class*, not once per event: record
      // the bigram entry id for every adjacent pair of the new sequence,
      // counting per-entry occurrences as we go (they become the CSR
      // offsets below, saving a separate counting pass).
      const SymbolId* seq = arena.symbols.data() + view.begin;
      for (std::uint32_t j = 0; j + 1 < len; ++j) {
        const std::uint64_t key = PackPair(seq[j], seq[j + 1]);
        std::uint32_t& entry = postings.bigram_index.At(key);
        if (entry == 0) {
          postings.bigram_keys.push_back(key);
          // entry ids are offset by 1 so the map's zero-init means "new".
          entry = static_cast<std::uint32_t>(postings.bigram_keys.size());
          entry_counts.push_back(0);
        }
        arena.pair_entries.push_back(entry - 1);
        ++entry_counts[entry - 1];
      }
      arena.pair_entries.push_back(0);  // the last symbol starts no pair
      view.unit_weight = weighted ? options.weight_fn(e.prefix) : 1.0;
      arena.views.push_back(view);
      class_mult.push_back(0);
      class_index.Insert(cls, view.begin, len);
    }
    event_class[ei] = cls;
    ++class_mult[cls];
    if (weighted) {
      EventView& view = arena.views[cls];
      view.weight += view.unit_weight;
      result.total_weight += view.unit_weight;
    }
  }
  if (!weighted) {
    for (std::size_t cls = 0; cls < arena.views.size(); ++cls) {
      arena.views[cls].weight = static_cast<double>(class_mult[cls]);
    }
    result.total_weight = static_cast<double>(events.size());
  }

  // Posting CSR: offsets are the prefix sums of the per-entry counts
  // gathered during encoding, plus one fill pass over the recorded entry
  // ids — no per-bigram vectors, no allocator churn.
  const std::size_t n_bigrams = postings.bigram_keys.size();
  postings.offsets.assign(n_bigrams + 1, 0);
  for (std::size_t e = 0; e < n_bigrams; ++e) {
    postings.offsets[e + 1] = postings.offsets[e] + entry_counts[e];
  }
  postings.events.resize(postings.offsets[n_bigrams]);
  {
    std::vector<std::uint32_t> cursor(postings.offsets.begin(),
                                      postings.offsets.end() - 1);
    for (std::uint32_t cls = 0; cls < arena.views.size(); ++cls) {
      const EventView& view = arena.views[cls];
      for (std::uint32_t j = 0; j + 1 < view.length; ++j) {
        postings.events[cursor[arena.pair_entries[view.begin + j]]++] = cls;
      }
    }
  }
  // Prefix -> classes CSR, same two-pass construction.
  postings.prefix_offsets.assign(result.symbols.size() + 1, 0);
  for (const EventView& view : arena.views) {
    ++postings.prefix_offsets[view.prefix_symbol + 1];
  }
  for (std::size_t s = 0; s < result.symbols.size(); ++s) {
    postings.prefix_offsets[s + 1] += postings.prefix_offsets[s];
  }
  postings.prefix_classes.resize(arena.views.size());
  {
    std::vector<std::uint32_t> cursor(postings.prefix_offsets.begin(),
                                      postings.prefix_offsets.end() - 1);
    for (std::uint32_t cls = 0; cls < arena.views.size(); ++cls) {
      postings.prefix_classes[cursor[arena.views[cls].prefix_symbol]++] = cls;
    }
  }
  result.stats.distinct_sequences = arena.views.size();
  result.stats.symbols_interned = result.symbols.size();
  result.stats.arena_symbols = arena.symbols.size();
  result.stats.encode_seconds = encode_timer.Seconds();
  encode_span.Annotate("classes",
                       static_cast<std::uint64_t>(arena.views.size()));
  encode_span.End();
  RANOMALY_METRIC_COUNT("stemming_events_encoded_total", events.size());
  RANOMALY_METRIC_COUNT("stemming_distinct_sequences_total",
                        arena.views.size());
  RANOMALY_METRIC_COUNT("stemming_symbols_interned_total",
                        result.symbols.size());
  RANOMALY_METRIC_COUNT("stemming_arena_symbols_total", arena.symbols.size());
  RANOMALY_METRIC_OBSERVE("stemming_encode_seconds", obs::TimeBounds(),
                          result.stats.encode_seconds);

  // Initial bigram count, sharded over dense per-shard arrays indexed by
  // the entry ids recorded during encoding — no hashing.  The shard
  // split depends only on the class count — never on the pool — and
  // partials merge in shard order, so any thread count (or none)
  // produces identical sums, bit for bit.
  const util::StageTimer count_timer;
  obs::TraceSpan count_span("stemming.count");
  constexpr std::size_t kShardSize = 16384;
  const std::size_t shards =
      arena.views.empty() ? 0 : (arena.views.size() + kShardSize - 1) /
                                    kShardSize;
  std::vector<std::vector<double>> partial(shards);
  const auto count_shard = [&](std::size_t s) {
    const std::size_t begin = s * kShardSize;
    const std::size_t end = std::min(begin + kShardSize, arena.views.size());
    std::vector<double>& counts = partial[s];
    counts.assign(n_bigrams, 0.0);
    for (std::size_t i = begin; i < end; ++i) {
      const EventView& view = arena.views[i];
      const double weight = view.weight;
      for (std::uint32_t j = 0; j + 1 < view.length; ++j) {
        counts[arena.pair_entries[view.begin + j]] += weight;
      }
    }
  };
  if (options.pool != nullptr && shards > 1) {
    options.pool->ParallelFor(shards, count_shard);
  } else {
    for (std::size_t s = 0; s < shards; ++s) count_shard(s);
  }
  std::vector<double> bigram_counts(n_bigrams, 0.0);
  for (const std::vector<double>& counts : partial) {
    for (std::size_t e = 0; e < n_bigrams; ++e) {
      bigram_counts[e] += counts[e];
    }
  }
  partial.clear();
  result.stats.bigram_table_size = n_bigrams;
  result.stats.count_seconds = count_timer.Seconds();
  count_span.Annotate("bigrams", static_cast<std::uint64_t>(n_bigrams));
  count_span.Annotate("shards", static_cast<std::uint64_t>(shards));
  count_span.End();
  RANOMALY_METRIC_COUNT("stemming_bigram_entries_total", n_bigrams);
  RANOMALY_METRIC_OBSERVE("stemming_count_seconds", obs::TimeBounds(),
                          result.stats.count_seconds);

  const util::StageTimer extract_timer;
  obs::TraceSpan extract_span("stemming.extract");
  std::vector<char> active(arena.views.size(), 1);
  std::size_t active_count = events.size();  // in original-event units
  constexpr std::uint32_t kNoComponent = 0xffffffffu;
  std::vector<std::uint32_t> class_component(arena.views.size(),
                                             kNoComponent);
  Scratch scratch;

  while (result.components.size() < options.max_components &&
         active_count > 0) {
    const double min_count =
        std::max(options.min_count,
                 options.min_count_fraction * result.total_weight);
    auto top = TopSubsequence(arena, active, postings, bigram_counts,
                              min_count, scratch);
    if (!top) break;
    auto& [sequence, count] = *top;
    if (sequence.size() < options.min_subsequence_length) break;

    Component component;
    component.top_sequence = sequence;
    component.stem = {sequence[sequence.size() - 2], sequence.back()};
    component.count = count;

    // P: prefixes of active sequences containing s'.  Candidates come
    // from the stem pair's posting list (every sequence containing s'
    // contains its last bigram); only they are checked for containment.
    std::vector<SymbolId> prefix_symbols;
    const std::uint32_t stem_entry =
        postings.EntryOf(component.stem.first, component.stem.second);
    if (stem_entry != Postings::kNoEntry) {
      postings.ForEachClassWith(stem_entry, [&](std::uint32_t cls) {
        if (!active[cls]) return;
        if (sequence.size() == 2 ||
            ContainsSpan(arena.Seq(cls), arena.Len(cls), sequence.data(),
                         sequence.size())) {
          prefix_symbols.push_back(arena.views[cls].prefix_symbol);
        }
      });
    }
    std::sort(prefix_symbols.begin(), prefix_symbols.end());
    prefix_symbols.erase(
        std::unique(prefix_symbols.begin(), prefix_symbols.end()),
        prefix_symbols.end());

    // E: every active class whose prefix is in P, via the prefix posting
    // lists — proportional to the component, not the window.  Classes are
    // tagged with the component id; original event ids and weights are
    // recovered in one ordered pass after the recursion ends.  Each
    // removed class's bigram contributions are *subtracted* from the
    // persistent counts: the next iteration pays for the removed
    // component, not for a recount of the window.
    const std::uint32_t comp_id =
        static_cast<std::uint32_t>(result.components.size());
    for (const SymbolId prefix_symbol : prefix_symbols) {
      const std::uint32_t pend = postings.prefix_offsets[prefix_symbol + 1];
      for (std::uint32_t pi = postings.prefix_offsets[prefix_symbol];
           pi < pend; ++pi) {
        const std::uint32_t cls = postings.prefix_classes[pi];
        if (!active[cls]) continue;
        active[cls] = 0;
        class_component[cls] = comp_id;
        const EventView& view = arena.views[cls];
        active_count -= class_mult[cls];
        const double weight = view.weight;
        for (std::uint32_t j = 0; j + 1 < view.length; ++j) {
          bigram_counts[arena.pair_entries[view.begin + j]] -= weight;
        }
      }
    }

    component.prefixes.reserve(prefix_symbols.size());
    for (const SymbolId s : prefix_symbols) {
      component.prefixes.push_back(result.symbols.PrefixOf(s));
    }
    std::sort(component.prefixes.begin(), component.prefixes.end());

    result.components.push_back(std::move(component));
  }

  // Expand classes back to original events, in ascending event order —
  // the same order (and the same floating-point accumulation sequence)
  // in which a per-event recursion would have collected them.
  for (std::size_t ei = 0; ei < events.size(); ++ei) {
    const std::uint32_t comp_id = class_component[event_class[ei]];
    if (comp_id == kNoComponent) continue;
    Component& component = result.components[comp_id];
    component.event_indices.push_back(ei);
    component.event_weight += arena.views[event_class[ei]].unit_weight;
  }

  result.residual_events = active_count;
  result.stats.components = result.components.size();
  result.stats.extract_seconds = extract_timer.Seconds();
  extract_span.Annotate("components",
                        static_cast<std::uint64_t>(result.components.size()));
  RANOMALY_METRIC_COUNT("stemming_components_total", result.components.size());
  RANOMALY_METRIC_OBSERVE("stemming_components_per_window",
                          (std::vector<double>{0, 1, 2, 4, 8, 16}),
                          static_cast<double>(result.components.size()));
  RANOMALY_METRIC_OBSERVE("stemming_extract_seconds", obs::TimeBounds(),
                          result.stats.extract_seconds);
  return result;
}

}  // namespace ranomaly::stemming
