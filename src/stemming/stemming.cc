#include "stemming/stemming.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/stats.h"
#include "util/thread_pool.h"

namespace ranomaly::stemming {
namespace {

// Tagged 64-bit encoding: kind in the top byte, payload below.  Prefixes
// pack (address << 8) | length into 40 bits.
constexpr std::uint64_t Tag(SymbolKind kind, std::uint64_t payload) {
  return (static_cast<std::uint64_t>(kind) << 56) | payload;
}

}  // namespace

SymbolId SymbolTable::InternPeer(bgp::Ipv4Addr addr) {
  return pool_.Intern(Tag(SymbolKind::kPeer, addr.value()));
}
SymbolId SymbolTable::InternNexthop(bgp::Ipv4Addr addr) {
  return pool_.Intern(Tag(SymbolKind::kNexthop, addr.value()));
}
SymbolId SymbolTable::InternAs(bgp::AsNumber asn) {
  return pool_.Intern(Tag(SymbolKind::kAs, asn));
}
SymbolId SymbolTable::InternPrefix(const bgp::Prefix& prefix) {
  const std::uint64_t payload =
      (static_cast<std::uint64_t>(prefix.addr().value()) << 8) |
      prefix.length();
  return pool_.Intern(Tag(SymbolKind::kPrefix, payload));
}

SymbolKind SymbolTable::KindOf(SymbolId id) const {
  return static_cast<SymbolKind>(pool_.Lookup(id) >> 56);
}

bgp::Ipv4Addr SymbolTable::AddrOf(SymbolId id) const {
  const SymbolKind kind = KindOf(id);
  if (kind != SymbolKind::kPeer && kind != SymbolKind::kNexthop) {
    throw std::logic_error("SymbolTable::AddrOf: not an address symbol");
  }
  return bgp::Ipv4Addr(
      static_cast<std::uint32_t>(pool_.Lookup(id) & 0xffffffffULL));
}

bgp::AsNumber SymbolTable::AsOf(SymbolId id) const {
  if (KindOf(id) != SymbolKind::kAs) {
    throw std::logic_error("SymbolTable::AsOf: not an AS symbol");
  }
  return static_cast<bgp::AsNumber>(pool_.Lookup(id) & 0xffffffffULL);
}

bgp::Prefix SymbolTable::PrefixOf(SymbolId id) const {
  if (KindOf(id) != SymbolKind::kPrefix) {
    throw std::logic_error("SymbolTable::PrefixOf: not a prefix symbol");
  }
  const std::uint64_t payload = pool_.Lookup(id) & 0xffffffffffULL;
  return bgp::Prefix(
      bgp::Ipv4Addr(static_cast<std::uint32_t>(payload >> 8)),
      static_cast<std::uint8_t>(payload & 0xff));
}

std::string SymbolTable::Name(SymbolId id) const {
  switch (KindOf(id)) {
    case SymbolKind::kPeer: return "peer " + AddrOf(id).ToString();
    case SymbolKind::kNexthop: return "nexthop " + AddrOf(id).ToString();
    case SymbolKind::kAs: return "AS" + std::to_string(AsOf(id));
    case SymbolKind::kPrefix: return PrefixOf(id).ToString();
  }
  return "?";
}

bool IsValidRawSymbol(std::uint64_t raw) {
  const std::uint64_t payload = raw & ((1ull << 56) - 1);
  switch (static_cast<SymbolKind>(raw >> 56)) {
    case SymbolKind::kPeer:
    case SymbolKind::kNexthop:
    case SymbolKind::kAs:
      return payload <= 0xffffffffULL;
    case SymbolKind::kPrefix:
      // (address << 8) | length in 40 bits, mask length <= 32.
      return payload <= 0xffffffffffULL && (payload & 0xff) <= 32;
  }
  return false;
}

std::string StemmingResult::StemLabel(const Component& component) const {
  return symbols.Name(component.stem.first) + " - " +
         symbols.Name(component.stem.second);
}

std::string StemmingResult::SequenceLabel(const Component& component) const {
  std::string out;
  for (std::size_t i = 0; i < component.top_sequence.size(); ++i) {
    if (i != 0) out += " ";
    out += symbols.Name(component.top_sequence[i]);
  }
  return out;
}

namespace {

constexpr double kCountEpsilon = 1e-9;

bool CountsEqual(double a, double b) {
  return std::fabs(a - b) <= kCountEpsilon * std::max(1.0, std::max(a, b));
}

inline std::uint64_t Mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

inline std::uint64_t PackPair(SymbolId a, SymbolId b) {
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

// ---------------------------------------------------------------------------
// Flat sequence arena over *distinct* sequences.  BGP spike traffic is
// massively repetitive — the same (peer, nexthop, path, prefix) sequence
// recurs ~10x in Table-1-scale windows — and the algorithm never needs to
// tell duplicates apart: removal is prefix-granular, so events with
// identical sequences always share fate.  Each distinct sequence becomes
// one weighted "class" view; counting, posting lists, and component
// extraction all run over classes, and original event ids are recovered
// in a single ordered pass at the end.

struct EventView {
  std::uint32_t begin = 0;
  std::uint32_t length = 0;
  SymbolId prefix_symbol = 0;
  double weight = 0.0;        // summed over all events of the class
  double unit_weight = 1.0;   // weight_fn value (same for the whole class)
};

struct Arena {
  std::vector<SymbolId> symbols;
  std::vector<std::uint64_t> raw;  // raw tagged value per position
  std::vector<EventView> views;    // one per distinct sequence class
  // Bigram entry id of the adjacent pair starting at each arena position
  // (meaningful for the first length-1 positions of every class).  Kept
  // so counting and incremental subtraction are plain array arithmetic —
  // no hash lookups at all.
  std::vector<std::uint32_t> pair_entries;

  const SymbolId* Seq(std::size_t cls) const {
    return symbols.data() + views[cls].begin;
  }
  std::size_t Len(std::size_t cls) const { return views[cls].length; }
};

// Dispatches `chunks` chunks on the pool — or serially, in the same
// chunk order and with the same per-chunk partial association, when
// there is none — and returns the wall seconds spent.  Callers
// accumulate the return value into StemmingStats::parallel_seconds so
// the per-stage parallel fractions can be reported.
double ParallelRegion(util::ThreadPool* pool, std::size_t chunks,
                      const std::function<void(std::size_t, std::size_t)>& fn) {
  if (chunks == 0) return 0.0;
  const util::StageTimer timer;
  if (pool != nullptr) {
    pool->ParallelFor(chunks, fn);
  } else {
    for (std::size_t c = 0; c < chunks; ++c) fn(c, 0);
  }
  return timer.Seconds();
}

// Number of hash buckets the cross-shard merges partition distinct keys
// into.  A fixed constant: the partition must be a pure function of the
// input, never of the thread count.
constexpr std::size_t kMergeBuckets = 64;
constexpr std::uint32_t kNoIndex = 0xffffffffu;

inline std::size_t BucketOf(std::uint64_t hash) { return hash >> 58; }

std::uint64_t HashSpan(const std::uint64_t* seq, std::uint32_t len) {
  // Single-multiply accumulation (short dependency chain — this runs
  // once per *event*), with one full finalizer to spread entropy into
  // the low bits the probe mask keeps and the high bits BucketOf keeps.
  std::uint64_t h = len;
  for (std::uint32_t i = 0; i < len; ++i) {
    h = (h ^ seq[i]) * 0x9e3779b97f4a7c15ULL;
  }
  return Mix64(h);
}

// One encode shard: a contiguous range of events deduplicated into
// *local* sequence classes, each stored once in the shard's own flat raw
// store.  Merging the shards' local tables in shard order reproduces the
// global first-seen class order of a serial encoder (DESIGN.md "Parallel
// analysis architecture" has the argument), which is what lets the
// per-event dedup — the hottest loop of the whole analysis tier — run
// sharded while staying bit-identical at any thread count.
struct EncodeShard {
  std::vector<std::uint64_t> raw;          // local flat sequence storage
  std::vector<std::uint32_t> begins;       // per local class, into raw
  std::vector<std::uint32_t> lengths;      // per local class
  std::vector<std::uint64_t> hashes;       // HashSpan per local class
  std::vector<std::uint32_t> mult;         // this shard's events per class
  std::vector<std::uint32_t> event_local;  // local class per shard event
  // Local class -> cross-shard group index (bucket-local, written by the
  // merge), then -> final global class id after ids are assigned.
  std::vector<std::uint32_t> global;
  std::vector<std::uint32_t> bucket_offsets;  // kMergeBuckets + 1
  std::vector<std::uint32_t> by_bucket;  // local classes grouped by bucket

  // Open-addressed span index over the local classes.  The hash is kept
  // per slot so probes reject on one compare and growth never re-hashes
  // the raw store.
  std::vector<std::uint32_t> slot_cls;  // local class + 1; 0 = empty
  std::vector<std::uint64_t> slot_hash;
  std::size_t mask = 0;

  std::uint32_t FindOrInsert(const std::uint64_t* seq, std::uint32_t len,
                             std::uint64_t hash) {
    if (slot_cls.empty() || (begins.size() + 1) * 10 > slot_cls.size() * 7) {
      Grow(slot_cls.empty() ? 1024 : slot_cls.size() * 2);
    }
    std::size_t i = hash & mask;
    while (slot_cls[i] != 0) {
      const std::uint32_t cls = slot_cls[i] - 1;
      if (slot_hash[i] == hash && lengths[cls] == len &&
          std::equal(seq, seq + len, raw.data() + begins[cls])) {
        return cls;
      }
      i = (i + 1) & mask;
    }
    const auto cls = static_cast<std::uint32_t>(begins.size());
    slot_cls[i] = cls + 1;
    slot_hash[i] = hash;
    begins.push_back(static_cast<std::uint32_t>(raw.size()));
    lengths.push_back(len);
    hashes.push_back(hash);
    mult.push_back(0);
    raw.insert(raw.end(), seq, seq + len);
    return cls;
  }

  void Grow(std::size_t cap) {
    const std::vector<std::uint32_t> old_cls = std::move(slot_cls);
    const std::vector<std::uint64_t> old_hash = std::move(slot_hash);
    slot_cls.assign(cap, 0u);
    slot_hash.assign(cap, 0u);
    mask = cap - 1;
    for (std::size_t i = 0; i < old_cls.size(); ++i) {
      if (old_cls[i] == 0) continue;
      std::size_t j = old_hash[i] & mask;
      while (slot_cls[j] != 0) j = (j + 1) & mask;
      slot_cls[j] = old_cls[i];
      slot_hash[j] = old_hash[i];
    }
  }
};

// Cross-shard class groups for one hash bucket.  Each group is one
// global class; its representative is the (shard, local) pair that saw
// it first, iterating shards in order — which is exactly the shard whose
// event range contains the class's first event.
struct MergeBucket {
  std::vector<std::uint32_t> slots;  // group index + 1; 0 = empty
  std::size_t mask = 0;
  std::vector<std::uint32_t> g_shard;  // representative shard
  std::vector<std::uint32_t> g_local;  // representative local class
  std::vector<std::uint32_t> g_mult;   // events across all shards
  std::vector<std::uint32_t> g_gid;    // final global class id
};

// Sharded first-occurrence dedup of 64-bit keys.  Assigns dense ids to
// the distinct keys of the virtual item sequence [0, items) in first-
// occurrence order — exactly the ids a serial walk-and-intern assigns —
// writes each valid item's id over out[i], and returns the keys in id
// order.  key_fn(i) returns kInvalidKey to skip an item (its out[i] is
// left untouched).  The chunk split and the kMergeBuckets hash partition
// depend only on the input; per-chunk and per-bucket partials merge in
// fixed order, so any pool — or none — yields identical ids.
constexpr std::uint64_t kInvalidKey = ~0ULL;

template <typename KeyFn>
std::vector<std::uint64_t> OrderedDedupU64(std::size_t items,
                                           std::size_t grain,
                                           util::ThreadPool* pool,
                                           const KeyFn& key_fn,
                                           std::uint32_t* out,
                                           double* parallel_seconds) {
  std::vector<std::uint64_t> keys;
  if (items == 0) return keys;
  const std::size_t chunks = util::ThreadPool::ChunksFor(items, grain);

  struct Chunk {
    std::vector<std::uint64_t> values;   // local distinct, first-seen order
    std::vector<std::uint32_t> handles;  // per value: group index, then gid
    std::vector<std::uint32_t> slots;    // local index + 1; 0 = empty
    std::size_t mask = 0;
    std::vector<std::uint32_t> bucket_offsets;
    std::vector<std::uint32_t> by_bucket;
  };
  std::vector<Chunk> parts(chunks);

  // Pass 1 (sharded): local dedup.  out[i] holds the local index for
  // now; a translation pass rewrites it once global ids exist.
  *parallel_seconds += ParallelRegion(
      pool, chunks, [&](std::size_t c, std::size_t) {
        Chunk& part = parts[c];
        const auto grow = [&part](std::size_t cap) {
          part.slots.assign(cap, 0u);
          part.mask = cap - 1;
          for (std::uint32_t v = 0;
               v < static_cast<std::uint32_t>(part.values.size()); ++v) {
            std::size_t j = Mix64(part.values[v]) & part.mask;
            while (part.slots[j] != 0) j = (j + 1) & part.mask;
            part.slots[j] = v + 1;
          }
        };
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(items, grain, c);
        for (std::size_t i = begin; i < end; ++i) {
          const std::uint64_t key = key_fn(i);
          if (key == kInvalidKey) continue;
          if (part.slots.empty() ||
              (part.values.size() + 1) * 10 > part.slots.size() * 7) {
            grow(part.slots.empty() ? 256 : part.slots.size() * 2);
          }
          std::size_t j = Mix64(key) & part.mask;
          std::uint32_t local = kNoIndex;
          while (part.slots[j] != 0) {
            const std::uint32_t v = part.slots[j] - 1;
            if (part.values[v] == key) {
              local = v;
              break;
            }
            j = (j + 1) & part.mask;
          }
          if (local == kNoIndex) {
            local = static_cast<std::uint32_t>(part.values.size());
            part.slots[j] = local + 1;
            part.values.push_back(key);
          }
          out[i] = local;
        }
        // Partition the local distinct values by merge bucket, keeping
        // ascending (= first-local-occurrence) order within each bucket.
        const auto n_local = static_cast<std::uint32_t>(part.values.size());
        part.bucket_offsets.assign(kMergeBuckets + 1, 0);
        for (std::uint32_t v = 0; v < n_local; ++v) {
          ++part.bucket_offsets[BucketOf(Mix64(part.values[v])) + 1];
        }
        for (std::size_t b = 0; b < kMergeBuckets; ++b) {
          part.bucket_offsets[b + 1] += part.bucket_offsets[b];
        }
        part.by_bucket.resize(n_local);
        std::vector<std::uint32_t> cursor(part.bucket_offsets.begin(),
                                          part.bucket_offsets.end() - 1);
        for (std::uint32_t v = 0; v < n_local; ++v) {
          part.by_bucket[cursor[BucketOf(Mix64(part.values[v]))]++] = v;
        }
        part.handles.resize(n_local);
      });

  // Pass 2 (per bucket): group identical values across chunks.  Chunks
  // are visited in order and locals in first-occurrence order, so a
  // group's first insertion is its globally-first occurrence.
  struct Bucket {
    std::vector<std::uint32_t> slots;  // group index + 1; 0 = empty
    std::size_t mask = 0;
    std::vector<std::uint64_t> values;
    std::vector<std::uint32_t> g_chunk, g_local, g_id;
  };
  std::vector<Bucket> buckets(kMergeBuckets);
  *parallel_seconds += ParallelRegion(
      pool, kMergeBuckets, [&](std::size_t b, std::size_t) {
        Bucket& bucket = buckets[b];
        std::size_t cand = 0;
        for (const Chunk& part : parts) {
          cand += part.bucket_offsets[b + 1] - part.bucket_offsets[b];
        }
        if (cand == 0) return;
        std::size_t cap = 16;
        while (cap * 7 < cand * 10) cap <<= 1;
        bucket.slots.assign(cap, 0u);
        bucket.mask = cap - 1;
        for (std::uint32_t c = 0; c < static_cast<std::uint32_t>(chunks);
             ++c) {
          Chunk& part = parts[c];
          for (std::uint32_t k = part.bucket_offsets[b];
               k < part.bucket_offsets[b + 1]; ++k) {
            const std::uint32_t local = part.by_bucket[k];
            const std::uint64_t key = part.values[local];
            std::size_t j = Mix64(key) & bucket.mask;
            std::uint32_t idx = kNoIndex;
            while (bucket.slots[j] != 0) {
              const std::uint32_t g = bucket.slots[j] - 1;
              if (bucket.values[g] == key) {
                idx = g;
                break;
              }
              j = (j + 1) & bucket.mask;
            }
            if (idx == kNoIndex) {
              idx = static_cast<std::uint32_t>(bucket.values.size());
              bucket.slots[j] = idx + 1;
              bucket.values.push_back(key);
              bucket.g_chunk.push_back(c);
              bucket.g_local.push_back(local);
            }
            part.handles[local] = idx;
          }
        }
        bucket.g_id.resize(bucket.values.size());
      });

  // Pass 3 (serial): assign ids in global first-occurrence order.  A
  // value first occurs in the earliest chunk containing it, at that
  // chunk's first-local-occurrence position — so walking chunks in order
  // and locals in order visits representatives exactly in the order a
  // serial intern walk would have created them.
  for (std::uint32_t c = 0; c < static_cast<std::uint32_t>(chunks); ++c) {
    const Chunk& part = parts[c];
    for (std::uint32_t v = 0;
         v < static_cast<std::uint32_t>(part.values.size()); ++v) {
      Bucket& bucket = buckets[BucketOf(Mix64(part.values[v]))];
      const std::uint32_t idx = part.handles[v];
      if (bucket.g_chunk[idx] == c && bucket.g_local[idx] == v) {
        bucket.g_id[idx] = static_cast<std::uint32_t>(keys.size());
        keys.push_back(part.values[v]);
      }
    }
  }

  // Pass 4 (sharded): translate local indices to global ids.
  *parallel_seconds += ParallelRegion(
      pool, chunks, [&](std::size_t c, std::size_t) {
        Chunk& part = parts[c];
        for (std::uint32_t v = 0;
             v < static_cast<std::uint32_t>(part.values.size()); ++v) {
          part.handles[v] =
              buckets[BucketOf(Mix64(part.values[v]))].g_id[part.handles[v]];
        }
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(items, grain, c);
        for (std::size_t i = begin; i < end; ++i) {
          if (key_fn(i) != kInvalidKey) out[i] = part.handles[out[i]];
        }
      });
  return keys;
}

// ---------------------------------------------------------------------------
// Open-addressed hash map from packed 64-bit keys (bigrams) to a value.
// Linear probing, power-of-two capacity.  The empty sentinel is the pair
// (0xffffffff, 0xffffffff), unreachable while symbol ids stay dense.

template <typename Value>
class U64Map {
 public:
  static constexpr std::uint64_t kEmpty = ~0ULL;

  void Reserve(std::size_t n) {
    std::size_t cap = 16;
    while (cap * 7 < n * 10) cap <<= 1;  // target load factor <= 0.7
    if (cap > keys_.size()) Rehash(cap);
  }

  Value& At(std::uint64_t key) {
    if (keys_.empty() || (size_ + 1) * 10 > keys_.size() * 7) {
      Rehash(keys_.empty() ? 16 : keys_.size() * 2);
    }
    std::size_t i = Mix64(key) & mask_;
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return values_[i];
      i = (i + 1) & mask_;
    }
    keys_[i] = key;
    values_[i] = Value{};
    ++size_;
    return values_[i];
  }

  Value* Find(std::uint64_t key) {
    if (keys_.empty()) return nullptr;
    std::size_t i = Mix64(key) & mask_;
    while (keys_[i] != kEmpty) {
      if (keys_[i] == key) return &values_[i];
      i = (i + 1) & mask_;
    }
    return nullptr;
  }
  const Value* Find(std::uint64_t key) const {
    return const_cast<U64Map*>(this)->Find(key);
  }

  std::size_t size() const { return size_; }

 private:
  void Rehash(std::size_t cap) {
    std::vector<std::uint64_t> old_keys = std::move(keys_);
    std::vector<Value> old_values = std::move(values_);
    keys_.assign(cap, kEmpty);
    values_.assign(cap, Value{});
    mask_ = cap - 1;
    for (std::size_t i = 0; i < old_keys.size(); ++i) {
      if (old_keys[i] == kEmpty) continue;
      std::size_t j = Mix64(old_keys[i]) & mask_;
      while (keys_[j] != kEmpty) j = (j + 1) & mask_;
      keys_[j] = old_keys[i];
      values_[j] = old_values[i];
    }
  }

  std::vector<std::uint64_t> keys_;
  std::vector<Value> values_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;
};

// ---------------------------------------------------------------------------
// Open-addressed k-gram table: maps length-k symbol spans to a count.
// Distinct keys are appended to a flat backing store (k symbols each), so
// lookups compare against contiguous memory and iteration is allocation-
// free.  Doubles as the survivor set during iterative lengthening.

class NgramTable {
 public:
  void Reset(std::size_t k) {
    k_ = k;
    keys_.clear();
    counts_.clear();
    std::fill(slots_.begin(), slots_.end(), 0u);
  }

  double& Count(const SymbolId* gram) {
    if (slots_.empty() || (counts_.size() + 1) * 10 > slots_.size() * 7) {
      Grow(slots_.empty() ? 32 : slots_.size() * 2);
    }
    std::size_t i = Hash(gram) & mask_;
    while (slots_[i] != 0) {
      const std::uint32_t e = slots_[i] - 1;
      if (std::equal(gram, gram + k_, keys_.data() + e * k_)) {
        return counts_[e];
      }
      i = (i + 1) & mask_;
    }
    slots_[i] = static_cast<std::uint32_t>(counts_.size()) + 1;
    keys_.insert(keys_.end(), gram, gram + k_);
    counts_.push_back(0.0);
    return counts_.back();
  }

  const double* Find(const SymbolId* gram) const {
    if (slots_.empty()) return nullptr;
    std::size_t i = Hash(gram) & mask_;
    while (slots_[i] != 0) {
      const std::uint32_t e = slots_[i] - 1;
      if (std::equal(gram, gram + k_, keys_.data() + e * k_)) {
        return &counts_[e];
      }
      i = (i + 1) & mask_;
    }
    return nullptr;
  }

  // f(const SymbolId* gram, double count), in first-insertion order.
  template <typename F>
  void ForEach(F&& f) const {
    for (std::size_t e = 0; e < counts_.size(); ++e) {
      f(keys_.data() + e * k_, counts_[e]);
    }
  }

  std::size_t size() const { return counts_.size(); }
  std::size_t k() const { return k_; }
  bool empty() const { return counts_.empty(); }

 private:
  std::uint64_t Hash(const SymbolId* gram) const {
    std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ k_;
    for (std::size_t i = 0; i < k_; ++i) h = Mix64(h ^ gram[i]);
    return h;
  }

  void Grow(std::size_t cap) {
    slots_.assign(cap, 0u);
    mask_ = cap - 1;
    for (std::uint32_t e = 0; e < counts_.size(); ++e) {
      std::size_t i = Hash(keys_.data() + e * k_) & mask_;
      while (slots_[i] != 0) i = (i + 1) & mask_;
      slots_[i] = e + 1;
    }
  }

  std::size_t k_ = 2;
  std::vector<std::uint32_t> slots_;  // entry index + 1; 0 = empty
  std::vector<SymbolId> keys_;        // flat, k_ symbols per entry
  std::vector<double> counts_;
  std::size_t mask_ = 0;
};

// ---------------------------------------------------------------------------
// Posting lists: bigram -> ids of classes containing it, and prefix
// symbol -> ids of classes carrying that prefix.  Built once over the
// arena; `active` filtering happens at query time.  This is what lets
// component extraction touch candidates instead of scanning every active
// class.

struct Postings {
  static constexpr std::uint32_t kNoEntry = 0xffffffffu;

  U64Map<std::uint32_t> bigram_index;      // packed pair -> entry id (+1)
  std::vector<std::uint64_t> bigram_keys;  // packed pair per entry
  // CSR index: for entry e, events[offsets[e]..offsets[e+1]) are the ids
  // of classes whose sequence contains that bigram, ascending; a class
  // containing the bigram at several positions appears once per position,
  // so duplicates are adjacent and dedup is a single comparison.
  std::vector<std::uint32_t> offsets;
  std::vector<std::uint32_t> events;
  // Prefix symbol -> classes CSR (class ids ascending), same layout.
  std::vector<std::uint32_t> prefix_offsets;
  std::vector<std::uint32_t> prefix_classes;

  std::uint32_t EntryOf(SymbolId a, SymbolId b) const {
    const std::uint32_t* entry = bigram_index.Find(PackPair(a, b));
    return entry ? *entry - 1 : kNoEntry;
  }
};

bool ContainsSpan(const SymbolId* seq, std::size_t len, const SymbolId* sub,
                  std::size_t sub_len) {
  if (sub_len > len) return false;
  for (std::size_t j = 0; j + sub_len <= len; ++j) {
    if (std::equal(sub, sub + sub_len, seq + j)) return true;
  }
  return false;
}

// Reused allocations for the per-component search.  The chunk_* members
// hold per-chunk partials for the pool-dispatched extract passes:
// indexed by chunk, merged in chunk order, and reused across lengthening
// levels and components to avoid allocator churn.  (Per-chunk — never
// per-slot — because slot assignment is the one thing the pool does not
// keep deterministic.)
struct Scratch {
  NgramTable survivors;
  NgramTable extended;
  std::vector<std::uint32_t> candidates;
  std::vector<char> entry_mark;  // bigram entries surviving at length 2
  std::vector<NgramTable> chunk_tables;
  std::vector<std::vector<std::uint32_t>> chunk_ids;
  std::vector<std::vector<SymbolId>> chunk_prefixes;
  std::vector<std::vector<double>> chunk_deltas;
  std::vector<double> chunk_max;
  std::vector<std::uint32_t> range_starts;  // posting start per range
  std::vector<std::uint32_t> range_bases;   // cumulative virtual offsets
  std::vector<std::uint32_t> removed;       // classes of the current component
};

// Finds the top-ranked sub-sequence (count desc, length desc, then
// lexicographically smallest for determinism) over active classes,
// reading bigram counts from the persistent (incrementally maintained)
// table.  Returns nullopt if no bigram reaches min_count.  The scan,
// candidate-collection, and re-scoring passes are sharded on the pool
// with input-derived grains (options.scan_grain / candidate_grain);
// per-chunk partials merge in chunk order, so the pick — including the
// last bits of every weighted count — is unchanged by the thread count.
std::optional<std::pair<std::vector<SymbolId>, double>> TopSubsequence(
    const Arena& arena, const std::vector<char>& active,
    const Postings& postings, const std::vector<double>& bigram_counts,
    double min_count, Scratch& scratch, const StemmingOptions& options,
    double* parallel_seconds) {
  util::ThreadPool* pool = options.pool;
  const std::size_t scan_grain = std::max<std::size_t>(1, options.scan_grain);
  const std::size_t n_entries = bigram_counts.size();

  // The maximum over all length>=2 sub-sequences is attained by a bigram
  // (counts are antitone in extension); the persistent dense count array
  // already holds every active bigram count.  Max is order-independent,
  // so the per-chunk maxima merge exactly.
  const std::size_t scan_chunks =
      util::ThreadPool::ChunksFor(n_entries, scan_grain);
  scratch.chunk_max.assign(scan_chunks, 0.0);
  *parallel_seconds += ParallelRegion(
      pool, scan_chunks, [&](std::size_t c, std::size_t) {
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(n_entries, scan_grain, c);
        double m = 0.0;
        for (std::size_t e = begin; e < end; ++e) {
          m = std::max(m, bigram_counts[e]);
        }
        scratch.chunk_max[c] = m;
      });
  double best_count = 0.0;
  for (const double m : scratch.chunk_max) best_count = std::max(best_count, m);
  if (best_count < min_count || best_count <= kCountEpsilon) {
    return std::nullopt;
  }

  // Survivors at length 2, collected per chunk and merged in chunk (=
  // entry) order.  `entry_mark` mirrors the survivor set by entry id so
  // the first lengthening level can test membership with an array load
  // instead of a hash probe per position.
  if (scratch.chunk_ids.size() < scan_chunks) {
    scratch.chunk_ids.resize(scan_chunks);
  }
  *parallel_seconds += ParallelRegion(
      pool, scan_chunks, [&](std::size_t c, std::size_t) {
        std::vector<std::uint32_t>& ids = scratch.chunk_ids[c];
        ids.clear();
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(n_entries, scan_grain, c);
        for (std::size_t e = begin; e < end; ++e) {
          if (CountsEqual(bigram_counts[e], best_count)) {
            ids.push_back(static_cast<std::uint32_t>(e));
          }
        }
      });
  scratch.survivors.Reset(2);
  scratch.entry_mark.assign(n_entries, 0);
  for (std::size_t c = 0; c < scan_chunks; ++c) {
    for (const std::uint32_t e : scratch.chunk_ids[c]) {
      const std::uint64_t key = postings.bigram_keys[e];
      const SymbolId pair[2] = {static_cast<SymbolId>(key >> 32),
                                static_cast<SymbolId>(key)};
      scratch.survivors.Count(pair) = bigram_counts[e];
      scratch.entry_mark[e] = 1;
    }
  }

  // Iterative lengthening: a (k+1)-gram can keep the max count only if
  // its k-prefix does.  Count extensions of current survivors — over the
  // posting-list candidates only — until no survivor remains.
  std::vector<std::vector<SymbolId>> last_survivors;
  std::size_t k = 2;
  while (!scratch.survivors.empty()) {
    last_survivors.clear();
    scratch.survivors.ForEach([&](const SymbolId* gram, double) {
      last_survivors.emplace_back(gram, gram + k);
    });

    // Candidate classes: union of the survivors' leading-bigram
    // postings, viewed as one virtual concatenated index space so the
    // scan shards evenly however many survivors there are.  Per-chunk
    // hits concatenate in chunk order, then sort+unique — the same
    // sorted candidate set the serial mark-based walk produced.
    scratch.range_starts.clear();
    scratch.range_bases.clear();
    std::uint32_t virt = 0;
    scratch.survivors.ForEach([&](const SymbolId* gram, double) {
      const std::uint32_t e = postings.EntryOf(gram[0], gram[1]);
      if (e == Postings::kNoEntry) return;
      scratch.range_bases.push_back(virt);
      scratch.range_starts.push_back(postings.offsets[e]);
      virt += postings.offsets[e + 1] - postings.offsets[e];
    });
    scratch.range_bases.push_back(virt);
    const std::size_t cand_chunks =
        util::ThreadPool::ChunksFor(virt, scan_grain);
    if (scratch.chunk_ids.size() < cand_chunks) {
      scratch.chunk_ids.resize(cand_chunks);
    }
    *parallel_seconds += ParallelRegion(
        pool, cand_chunks, [&](std::size_t c, std::size_t) {
          std::vector<std::uint32_t>& ids = scratch.chunk_ids[c];
          ids.clear();
          const auto [vb, ve] =
              util::ThreadPool::ChunkRange(virt, scan_grain, c);
          std::size_t r =
              static_cast<std::size_t>(
                  std::upper_bound(scratch.range_bases.begin(),
                                   scratch.range_bases.end(),
                                   static_cast<std::uint32_t>(vb)) -
                  scratch.range_bases.begin()) -
              1;
          std::uint32_t last = kNoIndex;
          for (std::size_t v = vb; v < ve; ++v) {
            while (v >= scratch.range_bases[r + 1]) {
              ++r;
              last = kNoIndex;  // adjacent-dup skip is per posting list
            }
            const std::uint32_t id =
                postings.events[scratch.range_starts[r] +
                                (static_cast<std::uint32_t>(v) -
                                 scratch.range_bases[r])];
            if (id == last) continue;
            last = id;
            if (active[id]) ids.push_back(id);
          }
        });
    scratch.candidates.clear();
    for (std::size_t c = 0; c < cand_chunks; ++c) {
      scratch.candidates.insert(scratch.candidates.end(),
                                scratch.chunk_ids[c].begin(),
                                scratch.chunk_ids[c].end());
    }
    std::sort(scratch.candidates.begin(), scratch.candidates.end());
    scratch.candidates.erase(
        std::unique(scratch.candidates.begin(), scratch.candidates.end()),
        scratch.candidates.end());

    // Re-scoring: each chunk counts its candidate range into its own
    // k+1-gram table; tables merge in chunk order, so weighted counts
    // accumulate in the same association at any thread count.
    const std::size_t candidate_grain =
        std::max<std::size_t>(1, options.candidate_grain);
    const std::size_t score_chunks =
        util::ThreadPool::ChunksFor(scratch.candidates.size(),
                                    candidate_grain);
    if (scratch.chunk_tables.size() < score_chunks) {
      scratch.chunk_tables.resize(score_chunks);
    }
    *parallel_seconds += ParallelRegion(
        pool, score_chunks, [&](std::size_t c, std::size_t) {
          NgramTable& table = scratch.chunk_tables[c];
          table.Reset(k + 1);
          const auto [cb, ce] = util::ThreadPool::ChunkRange(
              scratch.candidates.size(), candidate_grain, c);
          if (k == 2) {
            // First level runs over every candidate position; membership
            // in the survivor set is a lookup on the recorded entry ids,
            // not a hash.
            for (std::size_t ci = cb; ci < ce; ++ci) {
              const std::uint32_t id = scratch.candidates[ci];
              const EventView& view = arena.views[id];
              if (view.length < 3) continue;
              const SymbolId* seq = arena.Seq(id);
              const double weight = view.weight;
              for (std::uint32_t j = 0; j + 2 < view.length; ++j) {
                if (scratch.entry_mark[arena.pair_entries[view.begin + j]]) {
                  table.Count(seq + j) += weight;
                }
              }
            }
          } else {
            for (std::size_t ci = cb; ci < ce; ++ci) {
              const std::uint32_t id = scratch.candidates[ci];
              const SymbolId* seq = arena.Seq(id);
              const std::size_t len = arena.Len(id);
              if (len < k + 1) continue;
              const double weight = arena.views[id].weight;
              for (std::size_t j = 0; j + k < len; ++j) {
                if (scratch.survivors.Find(seq + j) != nullptr) {
                  table.Count(seq + j) += weight;
                }
              }
            }
          }
        });
    scratch.extended.Reset(k + 1);
    for (std::size_t c = 0; c < score_chunks; ++c) {
      scratch.chunk_tables[c].ForEach([&](const SymbolId* gram, double count) {
        scratch.extended.Count(gram) += count;
      });
    }

    scratch.survivors.Reset(k + 1);
    scratch.extended.ForEach([&](const SymbolId* gram, double count) {
      if (CountsEqual(count, best_count)) {
        scratch.survivors.Count(gram) = count;
      }
    });
    ++k;
  }

  // Deterministic pick among the longest survivors.
  std::vector<SymbolId> best = *std::min_element(last_survivors.begin(),
                                                 last_survivors.end());
  return std::make_pair(std::move(best), best_count);
}

}  // namespace

StemmingResult Stem(std::span<const bgp::Event> events,
                    const StemmingOptions& options) {
  StemmingResult result;
  result.total_events = events.size();
  result.stats.events_encoded = events.size();
  util::ThreadPool* pool = options.pool;
  double par_encode = 0.0, par_count = 0.0, par_extract = 0.0;

  // ---- Encode: events -> weighted sequence classes in the flat arena.
  //
  // Sharded local dedup + ordered merge (DESIGN.md "Parallel analysis
  // architecture"): contiguous event shards dedup into local class
  // tables in parallel; merging the local tables in shard order
  // reproduces the global first-seen class order — and with it symbol
  // ids, bigram entry ids, and every downstream byte — of a serial
  // encoder, at any thread count.
  const util::StageTimer encode_timer;
  obs::TraceSpan encode_span("stemming.encode");
  encode_span.Annotate("events", static_cast<std::uint64_t>(events.size()));
  const bool weighted = static_cast<bool>(options.weight_fn);
  const std::size_t n = events.size();
  const std::size_t shard_events =
      std::max<std::size_t>(1, options.encode_shard_events);
  const std::size_t n_shards = util::ThreadPool::ChunksFor(n, shard_events);
  std::vector<EncodeShard> shards(n_shards);
  par_encode += ParallelRegion(
      pool, n_shards, [&](std::size_t s, std::size_t) {
        EncodeShard& shard = shards[s];
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(n, shard_events, s);
        shard.event_local.reserve(end - begin);
        std::vector<std::uint64_t> raw_buf;
        for (std::size_t ei = begin; ei < end; ++ei) {
          if (ei + 1 < end) {
            // The AS path lives behind a pointer per event; pull the next
            // one into cache while this one is being encoded.
            __builtin_prefetch(events[ei + 1].attrs.as_path.asns().data());
          }
          const bgp::Event& e = events[ei];
          // Raw tagged sequence c = x h a1 .. an p (consecutive AS-path
          // prepends collapsed, as they carry no location information) —
          // pure arithmetic, no table lookups.
          raw_buf.clear();
          raw_buf.push_back(Tag(SymbolKind::kPeer, e.peer.value()));
          raw_buf.push_back(
              Tag(SymbolKind::kNexthop, e.attrs.nexthop.value()));
          bgp::AsNumber last_as = 0;
          bool have_last = false;
          for (const bgp::AsNumber asn : e.attrs.as_path.asns()) {
            if (have_last && asn == last_as) continue;
            raw_buf.push_back(Tag(SymbolKind::kAs, asn));
            last_as = asn;
            have_last = true;
          }
          raw_buf.push_back(
              Tag(SymbolKind::kPrefix,
                  (static_cast<std::uint64_t>(e.prefix.addr().value()) << 8) |
                      e.prefix.length()));
          const auto len = static_cast<std::uint32_t>(raw_buf.size());
          const std::uint32_t cls = shard.FindOrInsert(
              raw_buf.data(), len, HashSpan(raw_buf.data(), len));
          ++shard.mult[cls];
          shard.event_local.push_back(cls);
        }
        // Partition the local classes by merge bucket, keeping ascending
        // (= first-seen) order within each bucket.
        const auto n_local = static_cast<std::uint32_t>(shard.begins.size());
        shard.bucket_offsets.assign(kMergeBuckets + 1, 0);
        for (std::uint32_t c = 0; c < n_local; ++c) {
          ++shard.bucket_offsets[BucketOf(shard.hashes[c]) + 1];
        }
        for (std::size_t b = 0; b < kMergeBuckets; ++b) {
          shard.bucket_offsets[b + 1] += shard.bucket_offsets[b];
        }
        shard.by_bucket.resize(n_local);
        std::vector<std::uint32_t> cursor(shard.bucket_offsets.begin(),
                                          shard.bucket_offsets.end() - 1);
        for (std::uint32_t c = 0; c < n_local; ++c) {
          shard.by_bucket[cursor[BucketOf(shard.hashes[c])]++] = c;
        }
        shard.global.resize(n_local);
      });

  // Merge local classes into global groups, one hash bucket per chunk
  // (buckets touch disjoint classes, so they are independent).
  std::vector<MergeBucket> merge_buckets(kMergeBuckets);
  par_encode += ParallelRegion(
      pool, n_shards == 0 ? 0 : kMergeBuckets,
      [&](std::size_t b, std::size_t) {
        MergeBucket& bucket = merge_buckets[b];
        std::size_t cand = 0;
        for (const EncodeShard& shard : shards) {
          cand += shard.bucket_offsets[b + 1] - shard.bucket_offsets[b];
        }
        if (cand == 0) return;
        std::size_t cap = 16;
        while (cap * 7 < cand * 10) cap <<= 1;
        bucket.slots.assign(cap, 0u);
        bucket.mask = cap - 1;
        for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(n_shards);
             ++s) {
          EncodeShard& shard = shards[s];
          for (std::uint32_t bi = shard.bucket_offsets[b];
               bi < shard.bucket_offsets[b + 1]; ++bi) {
            const std::uint32_t c = shard.by_bucket[bi];
            const std::uint64_t hash = shard.hashes[c];
            const std::uint32_t len = shard.lengths[c];
            const std::uint64_t* seq = shard.raw.data() + shard.begins[c];
            std::size_t i = hash & bucket.mask;
            std::uint32_t idx = kNoIndex;
            while (bucket.slots[i] != 0) {
              const std::uint32_t g = bucket.slots[i] - 1;
              const EncodeShard& rep = shards[bucket.g_shard[g]];
              const std::uint32_t rl = bucket.g_local[g];
              if (rep.hashes[rl] == hash && rep.lengths[rl] == len &&
                  std::equal(seq, seq + len, rep.raw.data() + rep.begins[rl])) {
                idx = g;
                break;
              }
              i = (i + 1) & bucket.mask;
            }
            if (idx == kNoIndex) {
              idx = static_cast<std::uint32_t>(bucket.g_shard.size());
              bucket.slots[i] = idx + 1;
              bucket.g_shard.push_back(s);
              bucket.g_local.push_back(c);
              bucket.g_mult.push_back(shard.mult[c]);
            } else {
              bucket.g_mult[idx] += shard.mult[c];
            }
            shard.global[c] = idx;
          }
        }
        bucket.g_gid.resize(bucket.g_shard.size());
      });

  // Assign global class ids in first-seen order: a class's first event
  // lies in its representative (= earliest) shard, so walking shards in
  // order and locals in first-seen order visits representatives exactly
  // in serial first-seen order.
  std::vector<std::uint32_t> rep_shard_of, rep_local_of;
  std::vector<std::uint32_t> class_mult;  // events per class
  for (std::uint32_t s = 0; s < static_cast<std::uint32_t>(n_shards); ++s) {
    const EncodeShard& shard = shards[s];
    for (std::uint32_t c = 0; c < static_cast<std::uint32_t>(
                                      shard.begins.size());
         ++c) {
      MergeBucket& bucket = merge_buckets[BucketOf(shard.hashes[c])];
      const std::uint32_t idx = shard.global[c];
      if (bucket.g_shard[idx] == s && bucket.g_local[idx] == c) {
        bucket.g_gid[idx] = static_cast<std::uint32_t>(class_mult.size());
        rep_shard_of.push_back(s);
        rep_local_of.push_back(c);
        class_mult.push_back(bucket.g_mult[idx]);
      }
    }
  }
  const std::size_t n_classes = class_mult.size();

  // Translate local classes to global ids and recover per-event classes.
  std::vector<std::uint32_t> event_class(n, 0);
  par_encode += ParallelRegion(
      pool, n_shards, [&](std::size_t s, std::size_t) {
        EncodeShard& shard = shards[s];
        for (std::uint32_t c = 0; c < static_cast<std::uint32_t>(
                                          shard.begins.size());
             ++c) {
          shard.global[c] =
              merge_buckets[BucketOf(shard.hashes[c])].g_gid[shard.global[c]];
        }
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(n, shard_events, s);
        for (std::size_t i = begin; i < end; ++i) {
          event_class[i] = shard.global[shard.event_local[i - begin]];
        }
      });

  // Lay the global arena out: representatives' spans copied in class
  // order, so positions — like ids — match the serial encoder's.
  Arena arena;
  arena.views.resize(n_classes);
  std::size_t total_positions = 0;
  for (std::size_t gid = 0; gid < n_classes; ++gid) {
    arena.views[gid].begin = static_cast<std::uint32_t>(total_positions);
    arena.views[gid].length =
        shards[rep_shard_of[gid]].lengths[rep_local_of[gid]];
    total_positions += arena.views[gid].length;
  }
  arena.raw.resize(total_positions);
  arena.symbols.resize(total_positions);
  std::vector<std::uint32_t> pos_class(total_positions, 0);
  const std::size_t class_grain =
      std::max<std::size_t>(1, options.candidate_grain);
  const std::size_t class_chunks =
      util::ThreadPool::ChunksFor(n_classes, class_grain);
  par_encode += ParallelRegion(
      pool, class_chunks, [&](std::size_t c, std::size_t) {
        const auto [gb, ge] =
            util::ThreadPool::ChunkRange(n_classes, class_grain, c);
        for (std::size_t gid = gb; gid < ge; ++gid) {
          const EncodeShard& shard = shards[rep_shard_of[gid]];
          const EventView& view = arena.views[gid];
          const std::uint64_t* src =
              shard.raw.data() + shard.begins[rep_local_of[gid]];
          std::copy(src, src + view.length, arena.raw.begin() + view.begin);
          std::fill(pos_class.begin() + view.begin,
                    pos_class.begin() + view.begin + view.length,
                    static_cast<std::uint32_t>(gid));
        }
      });
  std::vector<EncodeShard>().swap(shards);
  std::vector<MergeBucket>().swap(merge_buckets);

  // Symbol ids: first-occurrence dedup over the arena walk — the same
  // order a per-event encoder interns in, since a never-seen symbol
  // first appears in a never-seen sequence.  The SymbolTable is then
  // populated serially in id order (it assigns ids sequentially).
  const std::size_t dedup_grain = std::max<std::size_t>(shard_events, 4096);
  const std::vector<std::uint64_t> symbol_keys = OrderedDedupU64(
      total_positions, dedup_grain, pool,
      [&](std::size_t p) { return arena.raw[p]; }, arena.symbols.data(),
      &par_encode);
  for (const std::uint64_t key : symbol_keys) {
    result.symbols.InternRaw(key);
  }
  par_encode += ParallelRegion(
      pool, class_chunks, [&](std::size_t c, std::size_t) {
        const auto [gb, ge] =
            util::ThreadPool::ChunkRange(n_classes, class_grain, c);
        for (std::size_t gid = gb; gid < ge; ++gid) {
          EventView& view = arena.views[gid];
          view.prefix_symbol =
              arena.symbols[view.begin + view.length - 1];
        }
      });

  // Weights.  weight_fn is user code: call it on this thread only, once
  // per class, in class (= serial first-seen) order.  Class weights are
  // the unit weight added multiplicity times — the exact accumulation a
  // per-event encoder performs — and the weighted window total follows
  // original event order, so both match the serial bytes.
  if (weighted) {
    for (std::size_t gid = 0; gid < n_classes; ++gid) {
      arena.views[gid].unit_weight = options.weight_fn(
          result.symbols.PrefixOf(arena.views[gid].prefix_symbol));
    }
  }
  par_encode += ParallelRegion(
      pool, class_chunks, [&](std::size_t c, std::size_t) {
        const auto [gb, ge] =
            util::ThreadPool::ChunkRange(n_classes, class_grain, c);
        for (std::size_t gid = gb; gid < ge; ++gid) {
          EventView& view = arena.views[gid];
          if (weighted) {
            double w = 0.0;
            for (std::uint32_t m = 0; m < class_mult[gid]; ++m) {
              w += view.unit_weight;
            }
            view.weight = w;
          } else {
            view.weight = static_cast<double>(class_mult[gid]);
          }
        }
      });
  if (weighted) {
    for (std::size_t ei = 0; ei < n; ++ei) {
      result.total_weight += arena.views[event_class[ei]].unit_weight;
    }
  } else {
    result.total_weight = static_cast<double>(n);
  }

  // Bigram entry ids: first-occurrence dedup over the adjacent pairs of
  // the arena walk (class-final positions are skipped and keep entry 0,
  // as the serial encoder recorded).
  Postings postings;
  arena.pair_entries.assign(total_positions, 0);
  const auto pair_key = [&](std::size_t p) -> std::uint64_t {
    if (p + 1 >= total_positions || pos_class[p + 1] != pos_class[p]) {
      return kInvalidKey;
    }
    return PackPair(arena.symbols[p], arena.symbols[p + 1]);
  };
  postings.bigram_keys =
      OrderedDedupU64(total_positions, dedup_grain, pool, pair_key,
                      arena.pair_entries.data(), &par_encode);
  const std::size_t n_bigrams = postings.bigram_keys.size();
  postings.bigram_index.Reserve(n_bigrams);
  for (std::size_t e = 0; e < n_bigrams; ++e) {
    postings.bigram_index.At(postings.bigram_keys[e]) =
        static_cast<std::uint32_t>(e) + 1;
  }

  // Bigram -> classes CSR: per-chunk entry counts, cross-chunk exclusive
  // scan (parallel over entry ranges), then a sharded fill.  Chunks are
  // position-ascending and positions are class-ascending, so each
  // entry's posting list comes out in ascending class order with
  // same-class duplicates adjacent — identical to the serial fill.
  const std::size_t csr_chunks =
      util::ThreadPool::ChunksFor(total_positions, dedup_grain);
  std::vector<std::vector<std::uint32_t>> csr_counts(csr_chunks);
  par_encode += ParallelRegion(
      pool, csr_chunks, [&](std::size_t c, std::size_t) {
        std::vector<std::uint32_t>& counts = csr_counts[c];
        counts.assign(n_bigrams, 0);
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(total_positions, dedup_grain, c);
        for (std::size_t p = begin; p < end; ++p) {
          if (pair_key(p) != kInvalidKey) ++counts[arena.pair_entries[p]];
        }
      });
  postings.offsets.assign(n_bigrams + 1, 0);
  const std::size_t scan_grain = std::max<std::size_t>(1, options.scan_grain);
  const std::size_t entry_chunks =
      util::ThreadPool::ChunksFor(n_bigrams, scan_grain);
  par_encode += ParallelRegion(
      pool, entry_chunks, [&](std::size_t c, std::size_t) {
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(n_bigrams, scan_grain, c);
        for (std::size_t e = begin; e < end; ++e) {
          std::uint32_t total = 0;
          for (std::size_t cc = 0; cc < csr_chunks; ++cc) {
            total += csr_counts[cc][e];
          }
          postings.offsets[e + 1] = total;
        }
      });
  for (std::size_t e = 0; e < n_bigrams; ++e) {
    postings.offsets[e + 1] += postings.offsets[e];
  }
  par_encode += ParallelRegion(
      pool, entry_chunks, [&](std::size_t c, std::size_t) {
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(n_bigrams, scan_grain, c);
        for (std::size_t e = begin; e < end; ++e) {
          std::uint32_t running = postings.offsets[e];
          for (std::size_t cc = 0; cc < csr_chunks; ++cc) {
            const std::uint32_t count = csr_counts[cc][e];
            csr_counts[cc][e] = running;  // becomes the chunk's cursor
            running += count;
          }
        }
      });
  postings.events.resize(postings.offsets[n_bigrams]);
  par_encode += ParallelRegion(
      pool, csr_chunks, [&](std::size_t c, std::size_t) {
        std::vector<std::uint32_t>& cursor = csr_counts[c];
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(total_positions, dedup_grain, c);
        for (std::size_t p = begin; p < end; ++p) {
          if (pair_key(p) != kInvalidKey) {
            postings.events[cursor[arena.pair_entries[p]]++] = pos_class[p];
          }
        }
      });
  std::vector<std::vector<std::uint32_t>>().swap(csr_counts);

  // Prefix -> classes CSR, two-pass over the (small) class list.
  postings.prefix_offsets.assign(result.symbols.size() + 1, 0);
  for (const EventView& view : arena.views) {
    ++postings.prefix_offsets[view.prefix_symbol + 1];
  }
  for (std::size_t s = 0; s < result.symbols.size(); ++s) {
    postings.prefix_offsets[s + 1] += postings.prefix_offsets[s];
  }
  postings.prefix_classes.resize(arena.views.size());
  {
    std::vector<std::uint32_t> cursor(postings.prefix_offsets.begin(),
                                      postings.prefix_offsets.end() - 1);
    for (std::uint32_t cls = 0;
         cls < static_cast<std::uint32_t>(arena.views.size()); ++cls) {
      postings.prefix_classes[cursor[arena.views[cls].prefix_symbol]++] = cls;
    }
  }
  result.stats.distinct_sequences = arena.views.size();
  result.stats.symbols_interned = result.symbols.size();
  result.stats.arena_symbols = arena.symbols.size();
  result.stats.encode_seconds = encode_timer.Seconds();
  encode_span.Annotate("classes",
                       static_cast<std::uint64_t>(arena.views.size()));
  encode_span.Annotate("shards", static_cast<std::uint64_t>(n_shards));
  encode_span.End();
  RANOMALY_METRIC_COUNT("stemming_events_encoded_total", events.size());
  RANOMALY_METRIC_COUNT("stemming_distinct_sequences_total",
                        arena.views.size());
  RANOMALY_METRIC_COUNT("stemming_symbols_interned_total",
                        result.symbols.size());
  RANOMALY_METRIC_COUNT("stemming_arena_symbols_total", arena.symbols.size());
  RANOMALY_METRIC_OBSERVE("stemming_encode_seconds", obs::TimeBounds(),
                          result.stats.encode_seconds);
  if (result.stats.encode_seconds > 0.0) {
    RANOMALY_METRIC_SET(
        "stemming_encode_parallel_fraction",
        std::min(1.0, par_encode / result.stats.encode_seconds));
  }

  // Initial bigram count, sharded over dense per-shard arrays indexed by
  // the entry ids recorded during encoding — no hashing.  The shard
  // split depends only on the class count — never on the pool — and
  // partials merge in shard order, so any thread count (or none)
  // produces identical sums, bit for bit.
  const util::StageTimer count_timer;
  obs::TraceSpan count_span("stemming.count");
  constexpr std::size_t kShardSize = 16384;
  const std::size_t count_shards =
      util::ThreadPool::ChunksFor(arena.views.size(), kShardSize);
  std::vector<std::vector<double>> partial(count_shards);
  par_count += ParallelRegion(
      pool, count_shards, [&](std::size_t s, std::size_t) {
        const auto [begin, end] =
            util::ThreadPool::ChunkRange(arena.views.size(), kShardSize, s);
        std::vector<double>& counts = partial[s];
        counts.assign(n_bigrams, 0.0);
        for (std::size_t i = begin; i < end; ++i) {
          const EventView& view = arena.views[i];
          const double weight = view.weight;
          for (std::uint32_t j = 0; j + 1 < view.length; ++j) {
            counts[arena.pair_entries[view.begin + j]] += weight;
          }
        }
      });
  std::vector<double> bigram_counts(n_bigrams, 0.0);
  for (const std::vector<double>& counts : partial) {
    for (std::size_t e = 0; e < n_bigrams; ++e) {
      bigram_counts[e] += counts[e];
    }
  }
  partial.clear();
  result.stats.bigram_table_size = n_bigrams;
  result.stats.count_seconds = count_timer.Seconds();
  count_span.Annotate("bigrams", static_cast<std::uint64_t>(n_bigrams));
  count_span.Annotate("shards", static_cast<std::uint64_t>(count_shards));
  count_span.End();
  RANOMALY_METRIC_COUNT("stemming_bigram_entries_total", n_bigrams);
  RANOMALY_METRIC_OBSERVE("stemming_count_seconds", obs::TimeBounds(),
                          result.stats.count_seconds);
  if (result.stats.count_seconds > 0.0) {
    RANOMALY_METRIC_SET(
        "stemming_count_parallel_fraction",
        std::min(1.0, par_count / result.stats.count_seconds));
  }

  const util::StageTimer extract_timer;
  obs::TraceSpan extract_span("stemming.extract");
  std::vector<char> active(arena.views.size(), 1);
  std::size_t active_count = events.size();  // in original-event units
  constexpr std::uint32_t kNoComponent = 0xffffffffu;
  std::vector<std::uint32_t> class_component(arena.views.size(),
                                             kNoComponent);
  Scratch scratch;

  while (result.components.size() < options.max_components &&
         active_count > 0) {
    const double min_count =
        std::max(options.min_count,
                 options.min_count_fraction * result.total_weight);
    auto top = TopSubsequence(arena, active, postings, bigram_counts,
                              min_count, scratch, options, &par_extract);
    if (!top) break;
    auto& [sequence, count] = *top;
    if (sequence.size() < options.min_subsequence_length) break;

    Component component;
    component.top_sequence = sequence;
    component.stem = {sequence[sequence.size() - 2], sequence.back()};
    component.count = count;

    // P: prefixes of active sequences containing s'.  Candidates come
    // from the stem pair's posting list (every sequence containing s'
    // contains its last bigram); only they are checked for containment.
    // The containment scan shards over the posting range; per-chunk hits
    // concatenate in chunk order and are then sorted and deduplicated —
    // the same set the serial scan collected.
    std::vector<SymbolId> prefix_symbols;
    const std::uint32_t stem_entry =
        postings.EntryOf(component.stem.first, component.stem.second);
    if (stem_entry != Postings::kNoEntry) {
      const std::uint32_t pbase = postings.offsets[stem_entry];
      const std::size_t plen = postings.offsets[stem_entry + 1] - pbase;
      const std::size_t pchunks =
          util::ThreadPool::ChunksFor(plen, scan_grain);
      if (scratch.chunk_prefixes.size() < pchunks) {
        scratch.chunk_prefixes.resize(pchunks);
      }
      par_extract += ParallelRegion(
          pool, pchunks, [&](std::size_t c, std::size_t) {
            std::vector<SymbolId>& out = scratch.chunk_prefixes[c];
            out.clear();
            const auto [begin, end] =
                util::ThreadPool::ChunkRange(plen, scan_grain, c);
            std::uint32_t last = kNoIndex;
            for (std::size_t i = begin; i < end; ++i) {
              const std::uint32_t cls = postings.events[pbase + i];
              if (cls == last) continue;
              last = cls;
              if (!active[cls]) continue;
              if (sequence.size() == 2 ||
                  ContainsSpan(arena.Seq(cls), arena.Len(cls),
                               sequence.data(), sequence.size())) {
                out.push_back(arena.views[cls].prefix_symbol);
              }
            }
          });
      for (std::size_t c = 0; c < pchunks; ++c) {
        prefix_symbols.insert(prefix_symbols.end(),
                              scratch.chunk_prefixes[c].begin(),
                              scratch.chunk_prefixes[c].end());
      }
    }
    std::sort(prefix_symbols.begin(), prefix_symbols.end());
    prefix_symbols.erase(
        std::unique(prefix_symbols.begin(), prefix_symbols.end()),
        prefix_symbols.end());

    // E: every active class whose prefix is in P, via the prefix posting
    // lists — proportional to the component, not the window.  The
    // deactivation sweep stays serial (it mutates shared flags); the
    // subtract-on-removal pass shards the removed classes into
    // input-derived chunks, each accumulating a dense per-chunk delta
    // that merges in chunk order — so the persistent counts stay
    // bit-identical at any thread count.
    const std::uint32_t comp_id =
        static_cast<std::uint32_t>(result.components.size());
    scratch.removed.clear();
    for (const SymbolId prefix_symbol : prefix_symbols) {
      const std::uint32_t pend = postings.prefix_offsets[prefix_symbol + 1];
      for (std::uint32_t pi = postings.prefix_offsets[prefix_symbol];
           pi < pend; ++pi) {
        const std::uint32_t cls = postings.prefix_classes[pi];
        if (!active[cls]) continue;
        active[cls] = 0;
        class_component[cls] = comp_id;
        active_count -= class_mult[cls];
        scratch.removed.push_back(cls);
      }
    }
    const std::size_t removal_grain =
        std::max<std::size_t>(1, options.removal_grain);
    const std::size_t rchunks =
        util::ThreadPool::ChunksFor(scratch.removed.size(), removal_grain);
    if (scratch.chunk_deltas.size() < rchunks) {
      scratch.chunk_deltas.resize(rchunks);
    }
    par_extract += ParallelRegion(
        pool, rchunks, [&](std::size_t c, std::size_t) {
          std::vector<double>& delta = scratch.chunk_deltas[c];
          delta.assign(n_bigrams, 0.0);
          const auto [begin, end] = util::ThreadPool::ChunkRange(
              scratch.removed.size(), removal_grain, c);
          for (std::size_t i = begin; i < end; ++i) {
            const EventView& view = arena.views[scratch.removed[i]];
            const double weight = view.weight;
            for (std::uint32_t j = 0; j + 1 < view.length; ++j) {
              delta[arena.pair_entries[view.begin + j]] += weight;
            }
          }
        });
    for (std::size_t c = 0; c < rchunks; ++c) {
      const std::vector<double>& delta = scratch.chunk_deltas[c];
      for (std::size_t e = 0; e < n_bigrams; ++e) {
        bigram_counts[e] -= delta[e];
      }
    }

    component.prefixes.reserve(prefix_symbols.size());
    for (const SymbolId s : prefix_symbols) {
      component.prefixes.push_back(result.symbols.PrefixOf(s));
    }
    std::sort(component.prefixes.begin(), component.prefixes.end());

    result.components.push_back(std::move(component));
  }

  // Expand classes back to original events, in ascending event order —
  // the same order (and the same floating-point accumulation sequence)
  // in which a per-event recursion would have collected them.
  for (std::size_t ei = 0; ei < events.size(); ++ei) {
    const std::uint32_t comp_id = class_component[event_class[ei]];
    if (comp_id == kNoComponent) continue;
    Component& component = result.components[comp_id];
    component.event_indices.push_back(ei);
    component.event_weight += arena.views[event_class[ei]].unit_weight;
  }

  result.residual_events = active_count;
  result.stats.components = result.components.size();
  result.stats.extract_seconds = extract_timer.Seconds();
  result.stats.parallel_seconds = par_encode + par_count + par_extract;
  extract_span.Annotate("components",
                        static_cast<std::uint64_t>(result.components.size()));
  RANOMALY_METRIC_COUNT("stemming_components_total", result.components.size());
  RANOMALY_METRIC_OBSERVE("stemming_components_per_window",
                          (std::vector<double>{0, 1, 2, 4, 8, 16}),
                          static_cast<double>(result.components.size()));
  RANOMALY_METRIC_OBSERVE("stemming_extract_seconds", obs::TimeBounds(),
                          result.stats.extract_seconds);
  if (result.stats.extract_seconds > 0.0) {
    RANOMALY_METRIC_SET(
        "stemming_extract_parallel_fraction",
        std::min(1.0, par_extract / result.stats.extract_seconds));
  }
  return result;
}

}  // namespace ranomaly::stemming
