// Stemming — the paper's anomaly-detection algorithm (Section III-B).
//
// Each BGP event e (announce/withdraw from peer x, nexthop h, AS path
// a1..an, prefix p) becomes the sequence c = x h a1 ... an p.  The
// algorithm counts how many times every contiguous sub-sequence appears
// across the stream, ranks them by (count desc, length desc), and picks
// the top sequence s'.  The last pair of adjacent elements of s' is the
// *stem* — the problem location (Fig 4: 8 of 10 withdrawals share
// 11423-209, so the failure is on the 11423-209 edge).  The affected
// prefix set P is the prefixes of sequences containing s'; the component
// E is every event touching P.  Removing E and recursing decomposes the
// stream into its strongest correlated components.
//
// Implementation note: counts are antitone in sequence extension
// (count(s) <= count(any substring of s)), so the maximum count over
// length >= 2 sub-sequences is always attained by some bigram.  We count
// bigrams in one pass, then iteratively lengthen only sequences that
// retain the maximum count — exact, and linear-ish in the stream size
// instead of quadratic in path length.
//
// Counting backend (DESIGN.md "Arena counting backend"): event sequences
// live in one flat SymbolId arena with per-event (offset, length) views;
// sub-sequence counts use open-addressed tables keyed by arena spans; a
// bigram posting-list index maps each adjacent pair to the events
// containing it, so component extraction visits candidates instead of
// the whole window; and the bigram count table is persistent across the
// recursion — removing a component *subtracts* its events' contributions
// instead of recounting, making each iteration proportional to the
// removed component.  An optional ThreadPool shards the initial count
// and merges partial tables in shard order; results are bit-identical
// for any thread count.
//
// Temporal independence: the algorithm never looks at event ordering or
// inter-arrival times, so it works unchanged on a 10-minute spike window
// or a multi-day window where a single flapping prefix dominates.
//
// Weighted stemming (Section III-D.2 extension): an optional per-prefix
// weight (e.g. traffic volume) replaces the implicit weight of 1.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/prefix.h"
#include "util/intern.h"

namespace ranomaly::util {
class ThreadPool;
}

namespace ranomaly::stemming {

enum class SymbolKind : std::uint8_t {
  kPeer = 1,
  kNexthop = 2,
  kAs = 3,
  kPrefix = 4,
};

using SymbolId = std::uint32_t;

// Interns the tagged elements of event sequences.
class SymbolTable {
 public:
  SymbolId InternPeer(bgp::Ipv4Addr addr);
  SymbolId InternNexthop(bgp::Ipv4Addr addr);
  SymbolId InternAs(bgp::AsNumber asn);
  SymbolId InternPrefix(const bgp::Prefix& prefix);

  SymbolKind KindOf(SymbolId id) const;
  // Decoders (throw std::out_of_range on bad id, logic_error on kind
  // mismatch).
  bgp::Ipv4Addr AddrOf(SymbolId id) const;
  bgp::AsNumber AsOf(SymbolId id) const;
  bgp::Prefix PrefixOf(SymbolId id) const;

  // Display name: "peer 128.32.1.3", "nexthop 128.32.0.66", "AS209",
  // "192.96.10.0/24".
  std::string Name(SymbolId id) const;

  // Raw tagged encoding (kind in the top byte, payload below).  Stable
  // across SymbolTables: two windows interning the same element yield
  // the same raw value, which makes it the cross-window identity of a
  // symbol (incident dedup keys on it).
  std::uint64_t Raw(SymbolId id) const { return pool_.Lookup(id); }

  // Interns an already-tagged raw value (the inverse of Raw).  The arena
  // encoder dedups sequences on raw values first and only interns the
  // symbols of novel sequences; callers must pass values produced by the
  // tagged encoding above.
  SymbolId InternRaw(std::uint64_t raw) { return pool_.Intern(raw); }

  std::size_t size() const { return pool_.size(); }

 private:
  util::InternPool<std::uint64_t> pool_;
};

// State-export validation (live checkpointing, core/live_checkpoint.cc):
// true iff `raw` is a well-formed tagged symbol value — known kind byte
// and an in-range payload for that kind.  A persisted raw value must
// pass this before it may re-enter a dedup set or be re-interned;
// anything else means the checkpoint section is corrupt.
bool IsValidRawSymbol(std::uint64_t raw);

struct StemmingOptions {
  // Sub-sequences shorter than this are not rankable (a single element
  // has no "last adjacent pair").
  std::size_t min_subsequence_length = 2;
  // Stop after extracting this many components.
  std::size_t max_components = 8;
  // Stop when the top count falls below both of these.
  double min_count = 2.0;
  double min_count_fraction = 0.0;  // of the (weighted) event total
  // Optional per-prefix weight (traffic volume); default: every prefix
  // weighs 1 (the paper's base algorithm).
  std::function<double(const bgp::Prefix&)> weight_fn;
  // Optional pool for the sharded encode/count/extract stages
  // (non-owning).  Every shard split is fixed by the input size, never
  // by the thread count, so the result is bit-identical with any pool —
  // or none.
  util::ThreadPool* pool = nullptr;
  // Parallel decomposition tuning (DESIGN.md "Parallel analysis
  // architecture").  Each grain is a pure function of the input and
  // these values — never the thread count — so chunk splits, and with
  // them every merged result, are unchanged by RANOMALY_THREADS.
  // Defaults suit Table-I-scale windows; tests shrink them to force
  // multi-chunk execution on small inputs.
  std::size_t encode_shard_events = 32768;  // events per encode dedup shard
  std::size_t scan_grain = 8192;       // entries/posting slots per scan chunk
  std::size_t candidate_grain = 2048;  // classes per re-scoring chunk
  std::size_t removal_grain = 2048;    // removed classes per subtract chunk
};

// Analysis-stage counters for one Stem call.  Stem also records them on
// the process metrics registry (stemming_* metrics, see
// docs/OBSERVABILITY.md), which is what `ranomaly stats --analyze` and
// `ranomaly metrics` report.
struct StemmingStats {
  std::size_t events_encoded = 0;
  std::size_t distinct_sequences = 0;  // weighted classes after dedup
  std::size_t symbols_interned = 0;
  std::size_t arena_symbols = 0;      // total SymbolIds in the arena
  std::size_t bigram_table_size = 0;  // distinct bigrams after encoding
  std::size_t components = 0;
  double encode_seconds = 0.0;   // arena encoding + posting lists
  double count_seconds = 0.0;    // initial (sharded) bigram count
  double extract_seconds = 0.0;  // recursion: top-seq + component removal
  // Wall time spent inside pool-dispatched regions across all stages;
  // with the stage totals it yields the per-stage parallel-fraction
  // gauges (stemming_*_parallel_fraction) that tell an operator how
  // much of a window was Amdahl-serial.
  double parallel_seconds = 0.0;
};

struct Component {
  std::vector<SymbolId> top_sequence;        // s'
  std::pair<SymbolId, SymbolId> stem{0, 0};  // last adjacent pair of s'
  double count = 0.0;                        // (weighted) occurrences of s'
  std::vector<bgp::Prefix> prefixes;         // P: affected prefixes
  std::vector<std::size_t> event_indices;    // E: indices into the input
  double event_weight = 0.0;                 // weighted size of E
};

struct StemmingResult {
  SymbolTable symbols;
  std::vector<Component> components;
  std::size_t total_events = 0;
  double total_weight = 0.0;
  std::size_t residual_events = 0;  // events not claimed by any component
  StemmingStats stats;

  // "11423-209" style label of a component's stem.
  std::string StemLabel(const Component& component) const;
  std::string SequenceLabel(const Component& component) const;
};

StemmingResult Stem(std::span<const bgp::Event> events,
                    const StemmingOptions& options = {});

}  // namespace ranomaly::stemming
