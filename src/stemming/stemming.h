// Stemming — the paper's anomaly-detection algorithm (Section III-B).
//
// Each BGP event e (announce/withdraw from peer x, nexthop h, AS path
// a1..an, prefix p) becomes the sequence c = x h a1 ... an p.  The
// algorithm counts how many times every contiguous sub-sequence appears
// across the stream, ranks them by (count desc, length desc), and picks
// the top sequence s'.  The last pair of adjacent elements of s' is the
// *stem* — the problem location (Fig 4: 8 of 10 withdrawals share
// 11423-209, so the failure is on the 11423-209 edge).  The affected
// prefix set P is the prefixes of sequences containing s'; the component
// E is every event touching P.  Removing E and recursing decomposes the
// stream into its strongest correlated components.
//
// Implementation note: counts are antitone in sequence extension
// (count(s) <= count(any substring of s)), so the maximum count over
// length >= 2 sub-sequences is always attained by some bigram.  We count
// bigrams in one pass, then iteratively lengthen only sequences that
// retain the maximum count — exact, and linear-ish in the stream size
// instead of quadratic in path length.
//
// Temporal independence: the algorithm never looks at event ordering or
// inter-arrival times, so it works unchanged on a 10-minute spike window
// or a multi-day window where a single flapping prefix dominates.
//
// Weighted stemming (Section III-D.2 extension): an optional per-prefix
// weight (e.g. traffic volume) replaces the implicit weight of 1.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bgp/attributes.h"
#include "bgp/prefix.h"
#include "util/intern.h"

namespace ranomaly::stemming {

enum class SymbolKind : std::uint8_t {
  kPeer = 1,
  kNexthop = 2,
  kAs = 3,
  kPrefix = 4,
};

using SymbolId = std::uint32_t;

// Interns the tagged elements of event sequences.
class SymbolTable {
 public:
  SymbolId InternPeer(bgp::Ipv4Addr addr);
  SymbolId InternNexthop(bgp::Ipv4Addr addr);
  SymbolId InternAs(bgp::AsNumber asn);
  SymbolId InternPrefix(const bgp::Prefix& prefix);

  SymbolKind KindOf(SymbolId id) const;
  // Decoders (throw std::out_of_range on bad id, logic_error on kind
  // mismatch).
  bgp::Ipv4Addr AddrOf(SymbolId id) const;
  bgp::AsNumber AsOf(SymbolId id) const;
  bgp::Prefix PrefixOf(SymbolId id) const;

  // Display name: "peer 128.32.1.3", "nexthop 128.32.0.66", "AS209",
  // "192.96.10.0/24".
  std::string Name(SymbolId id) const;

  std::size_t size() const { return pool_.size(); }

 private:
  util::InternPool<std::uint64_t> pool_;
};

struct StemmingOptions {
  // Sub-sequences shorter than this are not rankable (a single element
  // has no "last adjacent pair").
  std::size_t min_subsequence_length = 2;
  // Stop after extracting this many components.
  std::size_t max_components = 8;
  // Stop when the top count falls below both of these.
  double min_count = 2.0;
  double min_count_fraction = 0.0;  // of the (weighted) event total
  // Optional per-prefix weight (traffic volume); default: every prefix
  // weighs 1 (the paper's base algorithm).
  std::function<double(const bgp::Prefix&)> weight_fn;
};

struct Component {
  std::vector<SymbolId> top_sequence;        // s'
  std::pair<SymbolId, SymbolId> stem{0, 0};  // last adjacent pair of s'
  double count = 0.0;                        // (weighted) occurrences of s'
  std::vector<bgp::Prefix> prefixes;         // P: affected prefixes
  std::vector<std::size_t> event_indices;    // E: indices into the input
  double event_weight = 0.0;                 // weighted size of E
};

struct StemmingResult {
  SymbolTable symbols;
  std::vector<Component> components;
  std::size_t total_events = 0;
  double total_weight = 0.0;
  std::size_t residual_events = 0;  // events not claimed by any component

  // "11423-209" style label of a component's stem.
  std::string StemLabel(const Component& component) const;
  std::string SequenceLabel(const Component& component) const;
};

StemmingResult Stem(std::span<const bgp::Event> events,
                    const StemmingOptions& options = {});

}  // namespace ranomaly::stemming
